#include "daemon/daemon.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/fleet.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "graph/snapcodec.hh"
#include "workloads/dfg_programs.hh"

namespace srv
{

namespace
{

/** Daemon-checkpoint payload revision (inside the common envelope). */
constexpr std::uint32_t kCheckpointVersion = 1;

/** A line longer than this is a protocol violation, not a request. */
constexpr std::size_t kMaxLineBytes = 1u << 20;

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw std::runtime_error("fcntl(O_NONBLOCK) failed");
}

void
closeIf(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

sim::json::Value
jerr(const std::string &what)
{
    auto v = sim::json::Value::obj();
    v.set("ok", sim::json::Value::boolean(false));
    v.set("error", sim::json::Value::str(what));
    return v;
}

sim::json::Value
jok()
{
    auto v = sim::json::Value::obj();
    v.set("ok", sim::json::Value::boolean(true));
    return v;
}

sim::json::Value
jnum(std::uint64_t n)
{
    return sim::json::Value::intNum(n);
}

/** Latency digest every result/status consumer wants. */
sim::json::Value
latencyJson(const sim::Histogram &h)
{
    auto v = sim::json::Value::obj();
    v.set("count", jnum(h.summary().count()));
    v.set("mean", sim::json::Value::num(h.summary().mean()));
    v.set("p50", sim::json::Value::num(h.quantile(0.5)));
    v.set("p99", sim::json::Value::num(h.quantile(0.99)));
    return v;
}

sim::json::Value
valueJson(const graph::Value &v)
{
    using sim::json::Value;
    if (v.isBool())
        return Value::boolean(v.asBool());
    if (v.isInt()) {
        const std::int64_t i = v.asInt();
        return i < 0 ? Value::intNum(
                           static_cast<std::uint64_t>(-(i + 1)) + 1, true)
                     : Value::intNum(static_cast<std::uint64_t>(i));
    }
    if (v.isReal())
        return Value::num(v.asReal());
    return Value::str(v.toString());
}

graph::Value
valueFromJson(const sim::json::Value &v)
{
    using sim::json::Value;
    switch (v.kind()) {
    case Value::Kind::Bool:
        return graph::Value{v.asBool()};
    case Value::Kind::Int:
        return graph::Value{v.asI64()};
    case Value::Kind::Num:
        return graph::Value{v.asDouble()};
    default:
        throw sim::json::Error("json: argument is not a number");
    }
}

const char *
stateName(JobState s)
{
    switch (s) {
    case JobState::Queued:
        return "queued";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    }
    return "?";
}

workloads::ArrivalKind
arrivalKindFromName(const std::string &name)
{
    if (name == "poisson")
        return workloads::ArrivalKind::Poisson;
    if (name == "bursty")
        return workloads::ArrivalKind::Bursty;
    if (name == "diurnal")
        return workloads::ArrivalKind::Diurnal;
    throw sim::json::Error("json: unknown arrival kind \"" + name +
                           "\"");
}

} // namespace

sim::fault::FaultPlan
resolveJobFaults(const sim::fault::FaultPlan &plan,
                 std::uint64_t machineSeed, std::uint64_t jobId)
{
    sim::fault::FaultPlan resolved = plan;
    if (resolved.enabled() && resolved.seed == 0)
        resolved.seed = sim::deriveJobSeed(
            machineSeed, static_cast<std::size_t>(jobId));
    return resolved;
}

Daemon::Daemon(const DaemonConfig &cfg) : cfg_(cfg)
{
    workloadCb_["trapezoid"] = workloads::buildTrapezoid(program_);
    workloadCb_["producer-consumer"] =
        workloads::buildProducerConsumer(program_);
    workloadCb_["fib"] = workloads::buildFib(program_);
    workloadCb_["vector-sum"] = workloads::buildVectorSum(program_);
}

Daemon::~Daemon()
{
    if (executor_.joinable()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = Stop::Immediate;
        }
        cv_.notify_all();
        executor_.join();
    }
    closeAll();
}

void
Daemon::start()
{
    if (::pipe(sigPipe_) < 0 || ::pipe(wakePipe_) < 0)
        throw std::runtime_error("pipe() failed");
    setNonBlocking(sigPipe_[0]);
    setNonBlocking(wakePipe_[0]);
    setNonBlocking(wakePipe_[1]);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0)
        throw std::runtime_error(std::string("bind() failed: ") +
                                 std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        throw std::runtime_error("listen() failed");
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        throw std::runtime_error("getsockname() failed");
    port_ = ntohs(addr.sin_port);
    setNonBlocking(listenFd_);

    // Warm replicas: built once, reused for every job.
    fleet_ = std::make_unique<serve::TtdaFleet>(program_, cfg_.machine,
                                                cfg_.fleet);
    vnFleet_ =
        std::make_unique<serve::VnFleet>(cfg_.vnMachine, cfg_.fleet);
    jobsPerWorker_.assign(fleet_->workers(), 0);

    executor_ = std::thread([this] { executorLoop(); });
}

void
Daemon::requestShutdown()
{
    const char byte = '!';
    [[maybe_unused]] const ssize_t n = ::write(sigPipe_[1], &byte, 1);
}

void
Daemon::wakeLoop()
{
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wakePipe_[1], &byte, 1);
}

// ---- executor ------------------------------------------------------

void
Daemon::executorLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [this] {
            return stop_ != Stop::None || !queue_.empty();
        });
        if (stop_ == Stop::Immediate)
            break;
        if (queue_.empty()) {
            if (stop_ == Stop::Drain)
                break;
            continue;
        }
        // Take everything queued as one batch per tier; new submits
        // queue behind it and form the next batch.
        std::vector<std::uint64_t> ttdaIds, vnIds;
        while (!queue_.empty()) {
            const std::uint64_t id = queue_.front();
            queue_.pop_front();
            JobRecord &rec = jobs_.at(id);
            rec.state = JobState::Running;
            (rec.spec.tier == Tier::Vn ? vnIds : ttdaIds).push_back(id);
        }
        ++batches_;
        if (!ttdaIds.empty())
            runTtdaBatch(std::move(ttdaIds), lk);
        if (!vnIds.empty())
            runVnBatch(std::move(vnIds), lk);
    }
    execDone_ = true;
    lk.unlock();
    wakeLoop();
}

void
Daemon::runTtdaBatch(std::vector<std::uint64_t> ids,
                     std::unique_lock<std::mutex> &lk)
{
    std::vector<serve::FleetJob> batch;
    batch.reserve(ids.size());
    for (const std::uint64_t id : ids) {
        const JobSpec &spec = jobs_.at(id).spec;
        serve::FleetJob job;
        job.cb = workloadCb_.at(spec.workload);
        job.faults = spec.faults; // already resolved at admission
        const auto arrivals = workloads::arrivalSchedule(
            spec.arrival, static_cast<std::size_t>(spec.requests));
        job.requests.reserve(arrivals.size());
        for (const sim::Cycle at : arrivals)
            job.requests.push_back({spec.args, at});
        batch.push_back(std::move(job));
    }

    lk.unlock();
    std::vector<serve::FleetJobResult> results = fleet_->run(batch);
    lk.lock();

    steals_ += fleet_->steals();
    const auto &perWorker = fleet_->jobsPerWorker();
    for (std::size_t w = 0;
         w < perWorker.size() && w < jobsPerWorker_.size(); ++w)
        jobsPerWorker_[w] += perWorker[w];

    for (std::size_t i = 0; i < ids.size(); ++i) {
        JobRecord &rec = jobs_.at(ids[i]);
        rec.result = std::move(results[i]);
        rec.state = JobState::Done;
        requestsCompleted_ += rec.result.completed;
        auto frame = sim::json::Value::obj();
        frame.set("frame", sim::json::Value::str("job"));
        frame.set("id", jnum(rec.id));
        frame.set("state", sim::json::Value::str("done"));
        frame.set("cycles", jnum(rec.result.cycles));
        frame.set("completed", jnum(rec.result.completed));
        pushFrame(frame);
    }
    wakeLoop();
}

void
Daemon::runVnBatch(std::vector<std::uint64_t> ids,
                   std::unique_lock<std::mutex> &lk)
{
    std::vector<serve::VnFleetJob> batch;
    batch.reserve(ids.size());
    const std::uint64_t words =
        cfg_.vnMachine.wordsPerModule * cfg_.vnMachine.numCores;
    for (const std::uint64_t id : ids) {
        const JobSpec &spec = jobs_.at(id).spec;
        serve::VnFleetJob job;
        const auto arrivals = workloads::arrivalSchedule(
            spec.arrival, static_cast<std::size_t>(spec.requests));
        job.requests.reserve(arrivals.size());
        for (std::size_t i = 0; i < arrivals.size(); ++i) {
            workloads::VnRequest req;
            req.arrival = arrivals[i];
            req.loads = spec.vnLoads;
            req.computePerLoad = spec.vnComputePerLoad;
            req.addr = i * spec.vnStride;
            req.stride = spec.vnStride;
            req.addrSpace = words;
            job.requests.push_back(req);
        }
        batch.push_back(std::move(job));
    }

    lk.unlock();
    std::vector<serve::VnFleetJobResult> results =
        vnFleet_->run(batch);
    lk.lock();

    steals_ += vnFleet_->steals();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        JobRecord &rec = jobs_.at(ids[i]);
        rec.vnResult = std::move(results[i]);
        rec.state = JobState::Done;
        requestsCompleted_ += rec.vnResult.completed;
        auto frame = sim::json::Value::obj();
        frame.set("frame", sim::json::Value::str("job"));
        frame.set("id", jnum(rec.id));
        frame.set("state", sim::json::Value::str("done"));
        frame.set("cycles", jnum(rec.vnResult.cycles));
        frame.set("completed", jnum(rec.vnResult.completed));
        pushFrame(frame);
    }
    wakeLoop();
}

// ---- request handling ----------------------------------------------

sim::json::Value
Daemon::opSubmit(const sim::json::Value &req)
{
    // Validation failures count as rejections in the srv.* gauges.
    const auto reject = [this](const std::string &what) {
        std::lock_guard<std::mutex> lk(mu_);
        ++rejected_;
        return jerr(what);
    };
    JobSpec spec;
    if (req.has("tier")) {
        const std::string tier = req.get("tier").asStr();
        if (tier == "ttda")
            spec.tier = Tier::Ttda;
        else if (tier == "vn")
            spec.tier = Tier::Vn;
        else
            return reject("unknown tier \"" + tier + "\"");
    }
    if (req.has("workload"))
        spec.workload = req.get("workload").asStr();
    if (spec.tier == Tier::Ttda && !workloadCb_.count(spec.workload))
        return reject("unknown workload \"" + spec.workload + "\"");
    if (req.has("args")) {
        const auto &args = req.get("args");
        for (std::size_t i = 0; i < args.size(); ++i)
            spec.args.push_back(valueFromJson(args.at(i)));
    }
    if (req.has("requests"))
        spec.requests = req.get("requests").asU64();
    if (spec.requests == 0)
        return reject("requests must be >= 1");
    if (spec.requests > cfg_.maxRequestsPerJob)
        return reject(
            sim::format("requests exceed the per-job cap ({} > {})",
                        spec.requests, cfg_.maxRequestsPerJob));
    if (req.has("seed"))
        spec.arrival.seed = req.get("seed").asU64();
    if (req.has("arrival")) {
        const auto &a = req.get("arrival");
        if (a.has("kind"))
            spec.arrival.kind =
                arrivalKindFromName(a.get("kind").asStr());
        if (a.has("meanGap"))
            spec.arrival.meanGap = a.get("meanGap").asDouble();
        if (spec.arrival.meanGap <= 0.0)
            return reject("arrival meanGap must be > 0");
        if (a.has("start"))
            spec.arrival.start = a.get("start").asU64();
        if (a.has("burstLen"))
            spec.arrival.burstLen =
                static_cast<std::uint32_t>(a.get("burstLen").asU64());
        if (a.has("burstScale"))
            spec.arrival.burstScale = a.get("burstScale").asDouble();
        if (a.has("diurnalPeriod"))
            spec.arrival.diurnalPeriod =
                a.get("diurnalPeriod").asDouble();
        if (a.has("diurnalDepth"))
            spec.arrival.diurnalDepth =
                a.get("diurnalDepth").asDouble();
    }
    if (req.has("faults")) {
        const auto &f = req.get("faults");
        if (f.has("seed"))
            spec.faults.seed = f.get("seed").asU64();
        if (f.has("dropRate"))
            spec.faults.dropRate = f.get("dropRate").asDouble();
        if (f.has("dupRate"))
            spec.faults.dupRate = f.get("dupRate").asDouble();
        if (f.has("corruptRate"))
            spec.faults.corruptRate = f.get("corruptRate").asDouble();
        if (f.has("delayRate"))
            spec.faults.delayRate = f.get("delayRate").asDouble();
        if (f.has("delaySpike"))
            spec.faults.delaySpike = f.get("delaySpike").asU64();
    }
    if (req.has("loads"))
        spec.vnLoads =
            static_cast<std::uint32_t>(req.get("loads").asU64());
    if (req.has("computePerLoad"))
        spec.vnComputePerLoad = static_cast<std::uint32_t>(
            req.get("computePerLoad").asU64());
    if (req.has("stride"))
        spec.vnStride = req.get("stride").asU64();

    std::lock_guard<std::mutex> lk(mu_);
    if (draining_) {
        ++rejected_;
        return jerr("daemon is draining; not admitting jobs");
    }
    if (queue_.size() >= cfg_.maxQueuedJobs) {
        ++rejected_;
        return jerr(sim::format("admission queue full ({} queued)",
                                queue_.size()));
    }
    const std::uint64_t id = nextId_++;
    // Resolve seed-0 fault plans against the daemon-global job id so
    // re-running this job (now, or from a restored checkpoint) draws
    // the identical fault stream regardless of batch composition.
    spec.faults =
        resolveJobFaults(spec.faults, cfg_.machine.seed, id);
    JobRecord rec;
    rec.id = id;
    rec.spec = std::move(spec);
    jobs_.emplace(id, std::move(rec));
    queue_.push_back(id);
    ++admitted_;
    cv_.notify_all();

    auto resp = jok();
    resp.set("id", jnum(id));
    return resp;
}

sim::json::Value
Daemon::opStatus()
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t queued = 0, running = 0, done = 0, failed = 0;
    for (const auto &[id, rec] : jobs_) {
        switch (rec.state) {
        case JobState::Queued:
            ++queued;
            break;
        case JobState::Running:
            ++running;
            break;
        case JobState::Done:
            ++done;
            break;
        case JobState::Failed:
            ++failed;
            break;
        }
    }
    auto resp = jok();
    resp.set("draining", sim::json::Value::boolean(draining_));
    auto srvGauges = sim::json::Value::obj();
    srvGauges.set("queued", jnum(queued));
    srvGauges.set("running", jnum(running));
    srvGauges.set("done", jnum(done));
    srvGauges.set("failed", jnum(failed));
    srvGauges.set("admitted", jnum(admitted_));
    srvGauges.set("rejected", jnum(rejected_));
    srvGauges.set("requestsCompleted", jnum(requestsCompleted_));
    srvGauges.set("batches", jnum(batches_));
    resp.set("srv", std::move(srvGauges));
    auto fleet = sim::json::Value::obj();
    fleet.set("workers", jnum(fleet_ ? fleet_->workers() : 0));
    fleet.set("steals", jnum(steals_));
    auto perWorker = sim::json::Value::arr();
    for (const std::uint64_t n : jobsPerWorker_)
        perWorker.push(jnum(n));
    fleet.set("jobsPerWorker", std::move(perWorker));
    resp.set("fleet", std::move(fleet));
    return resp;
}

sim::json::Value
Daemon::opResult(const sim::json::Value &req)
{
    const std::uint64_t id = req.get("id").asU64();
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return jerr(sim::format("no such job {}", id));
    const JobRecord &rec = it->second;
    auto resp = jok();
    resp.set("id", jnum(id));
    resp.set("state", sim::json::Value::str(stateName(rec.state)));
    resp.set("tier", sim::json::Value::str(
                         rec.spec.tier == Tier::Vn ? "vn" : "ttda"));
    if (rec.state == JobState::Failed)
        resp.set("error", sim::json::Value::str(rec.error));
    if (rec.state != JobState::Done)
        return resp;

    if (rec.spec.tier == Tier::Vn) {
        resp.set("cycles", jnum(rec.vnResult.cycles));
        resp.set("submitted", jnum(rec.vnResult.submitted));
        resp.set("completed", jnum(rec.vnResult.completed));
        resp.set("latency", latencyJson(rec.vnResult.latency));
        return resp;
    }
    const serve::FleetJobResult &r = rec.result;
    resp.set("cycles", jnum(r.cycles));
    resp.set("deadlocked", sim::json::Value::boolean(r.deadlocked));
    resp.set("submitted", jnum(r.submitted));
    resp.set("completed", jnum(r.completed));
    resp.set("watermarkHits", jnum(r.watermarkHits));
    resp.set("worker", jnum(r.worker));
    resp.set("latency", latencyJson(r.latency));
    auto outputs = sim::json::Value::arr();
    for (const ttda::OutputRecord &out : r.outputs) {
        auto o = sim::json::Value::obj();
        o.set("ctx", jnum(out.tag.ctx));
        o.set("cb", jnum(out.tag.codeBlock));
        o.set("stmt", jnum(out.tag.stmt));
        o.set("iter", jnum(out.tag.iter));
        o.set("value", valueJson(out.value));
        outputs.push(std::move(o));
    }
    resp.set("outputs", std::move(outputs));
    if (!r.statsJson.empty())
        resp.set("statsJson", sim::json::Value::str(r.statsJson));
    return resp;
}

sim::json::Value
Daemon::opCheckpoint(const sim::json::Value &req)
{
    const std::string path = req.get("path").asStr();
    saveCheckpoint(path);
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t pending = 0;
    for (const auto &[id, rec] : jobs_)
        if (rec.state != JobState::Done &&
            rec.state != JobState::Failed)
            ++pending;
    auto resp = jok();
    resp.set("path", sim::json::Value::str(path));
    resp.set("jobs", jnum(jobs_.size()));
    resp.set("pending", jnum(pending));
    return resp;
}

sim::json::Value
Daemon::opRestore(const sim::json::Value &req)
{
    const std::string path = req.get("path").asStr();
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!jobs_.empty())
            return jerr("restore requires an empty job table");
        if (draining_)
            return jerr("daemon is draining");
    }
    loadCheckpoint(path);
    std::lock_guard<std::mutex> lk(mu_);
    auto resp = jok();
    resp.set("jobs", jnum(jobs_.size()));
    resp.set("pending", jnum(queue_.size()));
    return resp;
}

sim::json::Value
Daemon::opShutdown()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        draining_ = true;
        if (stop_ == Stop::None)
            stop_ = Stop::Drain;
    }
    cv_.notify_all();
    auto resp = jok();
    resp.set("draining", sim::json::Value::boolean(true));
    return resp;
}

std::string
Daemon::handleLine(Conn &conn, const std::string &line)
{
    sim::json::Value resp;
    try {
        const auto req = sim::json::parse(line);
        const std::string op = req.get("op").asStr();
        if (op == "submit")
            resp = opSubmit(req);
        else if (op == "status")
            resp = opStatus();
        else if (op == "result")
            resp = opResult(req);
        else if (op == "watch") {
            conn.watching = true;
            resp = jok();
            resp.set("watching", sim::json::Value::boolean(true));
        } else if (op == "checkpoint")
            resp = opCheckpoint(req);
        else if (op == "restore")
            resp = opRestore(req);
        else if (op == "shutdown")
            resp = opShutdown();
        else
            resp = jerr("unknown op \"" + op + "\"");
    } catch (const std::exception &e) {
        resp = jerr(e.what());
    }
    return resp.dump() + "\n";
}

// ---- frames --------------------------------------------------------

void
Daemon::pushFrame(const sim::json::Value &frame)
{
    pendingFrames_.push_back(frame.dump() + "\n");
}

void
Daemon::deliverFrames()
{
    std::vector<std::string> frames;
    {
        std::lock_guard<std::mutex> lk(mu_);
        frames.swap(pendingFrames_);
    }
    if (frames.empty())
        return;
    for (Conn &conn : conns_)
        if (conn.watching && !conn.closing)
            for (const std::string &f : frames)
                conn.outbox += f;
}

// ---- network loop --------------------------------------------------

void
Daemon::serve()
{
    bool stopping = false;
    Stop stopMode = Stop::None;
    int graceTicks = 0;
    std::vector<pollfd> pfds;

    for (;;) {
        pfds.clear();
        pfds.push_back({listenFd_, POLLIN, 0});
        pfds.push_back({sigPipe_[0], POLLIN, 0});
        pfds.push_back({wakePipe_[0], POLLIN, 0});
        for (const Conn &conn : conns_) {
            short ev = POLLIN;
            if (!conn.outbox.empty())
                ev |= POLLOUT;
            pfds.push_back({conn.fd, ev, 0});
        }

        const int timeout = stopping ? 50 : -1;
        const int nready =
            ::poll(pfds.data(), pfds.size(), timeout);
        if (nready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        if (pfds[1].revents & POLLIN) { // signal self-pipe
            char buf[64];
            while (::read(sigPipe_[0], buf, sizeof buf) > 0) {
            }
            std::lock_guard<std::mutex> lk(mu_);
            draining_ = true;
            stop_ = Stop::Immediate; // finish in-flight batch only
            cv_.notify_all();
        }
        if (pfds[2].revents & POLLIN) { // executor wakeup
            char buf[64];
            while (::read(wakePipe_[0], buf, sizeof buf) > 0) {
            }
        }
        deliverFrames();

        if (pfds[0].revents & POLLIN) {
            for (;;) {
                const int fd = ::accept(listenFd_, nullptr, nullptr);
                if (fd < 0)
                    break;
                setNonBlocking(fd);
                Conn conn;
                conn.fd = fd;
                conns_.push_back(std::move(conn));
            }
        }

        // pfds[3..] track conns_ by index at build time; conns_ only
        // grows (accept) after the snapshot, so index math holds.
        const std::size_t tracked = pfds.size() - 3;
        for (std::size_t i = 0; i < tracked; ++i) {
            Conn &conn = conns_[i];
            const short rev = pfds[3 + i].revents;
            if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
                conn.closing = true;
                conn.outbox.clear();
                continue;
            }
            if (rev & POLLIN) {
                char buf[4096];
                for (;;) {
                    const ssize_t n =
                        ::recv(conn.fd, buf, sizeof buf, 0);
                    if (n > 0) {
                        conn.inbox.append(buf, n);
                        if (conn.inbox.size() > kMaxLineBytes) {
                            conn.outbox +=
                                jerr("request line too long")
                                    .dump() +
                                "\n";
                            conn.closing = true;
                            conn.inbox.clear();
                            break;
                        }
                    } else if (n == 0) {
                        conn.closing = true;
                        break;
                    } else {
                        break; // EAGAIN or error; poll again
                    }
                }
                std::size_t nl;
                while ((nl = conn.inbox.find('\n')) !=
                       std::string::npos) {
                    std::string line = conn.inbox.substr(0, nl);
                    conn.inbox.erase(0, nl + 1);
                    if (!line.empty() && line.back() == '\r')
                        line.pop_back();
                    if (line.empty())
                        continue;
                    conn.outbox += handleLine(conn, line);
                }
                deliverFrames(); // a submit may have raced a frame
            }
            if (!conn.outbox.empty()) {
                const ssize_t n =
                    ::send(conn.fd, conn.outbox.data(),
                           conn.outbox.size(), MSG_NOSIGNAL);
                if (n > 0)
                    conn.outbox.erase(0, static_cast<std::size_t>(n));
                else if (n < 0 && errno != EAGAIN &&
                         errno != EWOULDBLOCK)
                    conn.closing = true;
            }
        }

        conns_.erase(
            std::remove_if(conns_.begin(), conns_.end(),
                           [](Conn &conn) {
                               if (conn.closing &&
                                   conn.outbox.empty()) {
                                   closeIf(conn.fd);
                                   return true;
                               }
                               return false;
                           }),
            conns_.end());

        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!stopping && stop_ != Stop::None && execDone_) {
                stopping = true;
                stopMode = stop_;
            }
        }
        if (stopping) {
            deliverFrames();
            const bool flushed = std::all_of(
                conns_.begin(), conns_.end(),
                [](const Conn &c) { return c.outbox.empty(); });
            if (flushed || ++graceTicks > 40) // ~2s of 50ms ticks
                break;
        }
    }

    // Signal-path exit: still-queued jobs were never started; persist
    // them so a restored daemon can re-run them deterministically.
    if (stopMode == Stop::Immediate && !cfg_.autosavePath.empty()) {
        bool pending = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            pending = !queue_.empty();
        }
        if (pending) {
            try {
                saveCheckpoint(cfg_.autosavePath);
            } catch (const std::exception &e) {
                sim::warn("autosave failed: {}", e.what());
            }
        }
    }
    closeAll();
}

void
Daemon::closeAll()
{
    for (Conn &conn : conns_)
        closeIf(conn.fd);
    conns_.clear();
    closeIf(listenFd_);
    closeIf(sigPipe_[0]);
    closeIf(sigPipe_[1]);
    closeIf(wakePipe_[0]);
    closeIf(wakePipe_[1]);
}

// ---- checkpoint ----------------------------------------------------

namespace
{

void
saveSpec(sim::snapshot::Writer &w, const JobSpec &spec)
{
    w.u8(static_cast<std::uint8_t>(spec.tier));
    w.str(spec.workload);
    w.u64(spec.args.size());
    for (const graph::Value &v : spec.args)
        snapSave(w, v);
    w.u64(spec.requests);
    w.u8(static_cast<std::uint8_t>(spec.arrival.kind));
    w.f64(spec.arrival.meanGap);
    w.u64(spec.arrival.seed);
    w.u64(spec.arrival.start);
    w.u32(spec.arrival.burstLen);
    w.f64(spec.arrival.burstScale);
    w.f64(spec.arrival.diurnalPeriod);
    w.f64(spec.arrival.diurnalDepth);
    w.u64(spec.faults.seed);
    w.f64(spec.faults.dropRate);
    w.f64(spec.faults.dupRate);
    w.f64(spec.faults.corruptRate);
    w.f64(spec.faults.delayRate);
    w.u64(spec.faults.delaySpike);
    w.u32(spec.vnLoads);
    w.u32(spec.vnComputePerLoad);
    w.u64(spec.vnStride);
}

JobSpec
loadSpec(sim::snapshot::Reader &r)
{
    JobSpec spec;
    const std::uint8_t tier = r.u8();
    if (tier > static_cast<std::uint8_t>(Tier::Vn))
        r.fail("unknown job tier");
    spec.tier = static_cast<Tier>(tier);
    spec.workload = r.str();
    const std::uint64_t nargs = r.u64();
    for (std::uint64_t i = 0; i < nargs; ++i) {
        graph::Value v;
        snapLoad(r, v);
        spec.args.push_back(v);
    }
    spec.requests = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(
                   workloads::ArrivalKind::Diurnal))
        r.fail("unknown arrival kind");
    spec.arrival.kind = static_cast<workloads::ArrivalKind>(kind);
    spec.arrival.meanGap = r.f64();
    spec.arrival.seed = r.u64();
    spec.arrival.start = r.u64();
    spec.arrival.burstLen = r.u32();
    spec.arrival.burstScale = r.f64();
    spec.arrival.diurnalPeriod = r.f64();
    spec.arrival.diurnalDepth = r.f64();
    spec.faults.seed = r.u64();
    spec.faults.dropRate = r.f64();
    spec.faults.dupRate = r.f64();
    spec.faults.corruptRate = r.f64();
    spec.faults.delayRate = r.f64();
    spec.faults.delaySpike = r.u64();
    spec.vnLoads = r.u32();
    spec.vnComputePerLoad = r.u32();
    spec.vnStride = r.u64();
    return spec;
}

} // namespace

void
Daemon::saveCheckpoint(const std::string &path)
{
    sim::snapshot::Writer w;
    std::lock_guard<std::mutex> lk(mu_);
    w.u32(kCheckpointVersion);
    // Fingerprint: results are only reproducible on a daemon with the
    // same machine configuration.
    w.u32(cfg_.machine.numPEs);
    w.u64(cfg_.machine.seed);
    w.u8(static_cast<std::uint8_t>(cfg_.machine.topology));
    w.b(cfg_.machine.reliableNet);
    w.u32(cfg_.vnMachine.numCores);
    w.u64(cfg_.vnMachine.seed);

    w.u64(nextId_);
    w.u64(admitted_);
    w.u64(rejected_);
    w.u64(requestsCompleted_);
    w.u64(jobs_.size());
    for (const auto &[id, rec] : jobs_) {
        w.u64(id);
        saveSpec(w, rec.spec);
        // Running jobs persist as Queued: their batch's results are
        // not in the table yet, and re-running them is deterministic.
        const JobState state = rec.state == JobState::Running
                                   ? JobState::Queued
                                   : rec.state;
        w.u8(static_cast<std::uint8_t>(state));
        if (state == JobState::Failed)
            w.str(rec.error);
        if (state != JobState::Done)
            continue;
        if (rec.spec.tier == Tier::Vn) {
            w.u64(rec.vnResult.cycles);
            w.u64(rec.vnResult.submitted);
            w.u64(rec.vnResult.completed);
            snapSave(w, rec.vnResult.latency);
            continue;
        }
        const serve::FleetJobResult &r = rec.result;
        w.u64(r.outputs.size());
        for (const ttda::OutputRecord &out : r.outputs) {
            snapSave(w, out.tag);
            snapSave(w, out.value);
        }
        w.u64(r.cycles);
        w.b(r.deadlocked);
        w.u64(r.submitted);
        w.u64(r.completed);
        w.u64(r.watermarkHits);
        snapSave(w, r.latency);
        w.str(r.statsJson);
        w.u32(r.worker);
    }

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("cannot open \"" + path +
                                 "\" for writing");
    w.finish(os);
    os.flush();
    if (!os)
        throw std::runtime_error("short write to \"" + path + "\"");
}

void
Daemon::loadCheckpoint(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open \"" + path + "\"");
    sim::snapshot::Reader r(is);

    if (r.u32() != kCheckpointVersion)
        r.fail("unsupported daemon checkpoint version");
    if (r.u32() != cfg_.machine.numPEs)
        r.fail("checkpoint machine mismatch (numPEs)");
    if (r.u64() != cfg_.machine.seed)
        r.fail("checkpoint machine mismatch (seed)");
    if (r.u8() != static_cast<std::uint8_t>(cfg_.machine.topology))
        r.fail("checkpoint machine mismatch (topology)");
    if (r.b() != cfg_.machine.reliableNet)
        r.fail("checkpoint machine mismatch (reliableNet)");
    if (r.u32() != cfg_.vnMachine.numCores)
        r.fail("checkpoint machine mismatch (vn numCores)");
    if (r.u64() != cfg_.vnMachine.seed)
        r.fail("checkpoint machine mismatch (vn seed)");

    std::map<std::uint64_t, JobRecord> jobs;
    std::deque<std::uint64_t> queue;
    const std::uint64_t nextId = r.u64();
    const std::uint64_t admitted = r.u64();
    const std::uint64_t rejected = r.u64();
    const std::uint64_t requestsCompleted = r.u64();
    const std::uint64_t njobs = r.u64();
    for (std::uint64_t i = 0; i < njobs; ++i) {
        JobRecord rec;
        rec.id = r.u64();
        if (rec.id >= nextId)
            r.fail("job id past the id counter");
        rec.spec = loadSpec(r);
        if (rec.spec.tier == Tier::Ttda &&
            !workloadCb_.count(rec.spec.workload))
            r.fail("checkpoint references an unknown workload");
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(JobState::Failed) ||
            state == static_cast<std::uint8_t>(JobState::Running))
            r.fail("invalid job state");
        rec.state = static_cast<JobState>(state);
        if (rec.state == JobState::Failed)
            rec.error = r.str();
        if (rec.state == JobState::Done) {
            if (rec.spec.tier == Tier::Vn) {
                rec.vnResult.cycles = r.u64();
                rec.vnResult.submitted = r.u64();
                rec.vnResult.completed = r.u64();
                snapLoad(r, rec.vnResult.latency);
            } else {
                const std::uint64_t nout = r.u64();
                for (std::uint64_t o = 0; o < nout; ++o) {
                    ttda::OutputRecord out;
                    snapLoad(r, out.tag);
                    snapLoad(r, out.value);
                    rec.result.outputs.push_back(out);
                }
                rec.result.cycles = r.u64();
                rec.result.deadlocked = r.b();
                rec.result.submitted = r.u64();
                rec.result.completed = r.u64();
                rec.result.watermarkHits = r.u64();
                snapLoad(r, rec.result.latency);
                rec.result.statsJson = r.str();
                rec.result.worker = r.u32();
            }
        }
        const std::uint64_t id = rec.id;
        if (!jobs.emplace(id, std::move(rec)).second)
            r.fail("duplicate job id");
        if (jobs.at(id).state == JobState::Queued)
            queue.push_back(id);
    }
    r.expectEnd();

    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!jobs_.empty())
            throw std::runtime_error(
                "restore requires an empty job table");
        jobs_ = std::move(jobs);
        queue_ = std::move(queue);
        nextId_ = nextId;
        admitted_ = admitted;
        rejected_ = rejected;
        requestsCompleted_ = requestsCompleted;
        cv_.notify_all();
    }
    if (wakePipe_[1] >= 0)
        wakeLoop();
}

} // namespace srv

/**
 * @file
 * Simulation-as-a-service: a persistent daemon serving simulation jobs
 * over a newline-delimited JSON protocol on a local TCP socket.
 *
 * One process holds warm machine fleets (serve::TtdaFleet replicas
 * constructed once, recycled per job through Machine::reset(); a
 * serve::VnFleet for the von Neumann tier) and dispatches submitted
 * jobs onto them from an executor thread, while a poll()-based network
 * loop keeps accepting requests — so status/result queries stay
 * responsive while batches run.
 *
 * Protocol (one JSON object per line, one reply per line):
 *
 *   {"op":"submit","workload":"fib","args":[7],"requests":8,
 *    "seed":1,"arrival":{"kind":"poisson","meanGap":64},
 *    "faults":{"dropRate":0.01},"tier":"ttda"}   -> {"ok":true,"id":1}
 *   {"op":"status"}                  -> srv.* gauges + fleet tallies
 *   {"op":"result","id":1}           -> job state / full result
 *   {"op":"watch"}                   -> subscribe to job-event frames
 *   {"op":"checkpoint","path":"x.snap"} -> persist the job table
 *   {"op":"restore","path":"x.snap"}    -> load a checkpoint (idle only)
 *   {"op":"shutdown"}                -> drain everything, then exit
 *
 * Determinism: a job's result is a pure function of its spec and the
 * daemon's machine configuration. Fault plans with seed 0 are resolved
 * against the *daemon-global job id* at admission (never the batch
 * index or the worker), so re-running a checkpointed pending job — in
 * this process or a restored one — reproduces the original result
 * bit-for-bit. Checkpoints store completed results verbatim and
 * pending specs for deterministic re-execution; the checkpoint file
 * uses the same versioned envelope (common/snapshot.hh) as machine
 * snapshots, so truncation/corruption/version skew is rejected with a
 * clear error.
 *
 * Shutdown paths:
 *  - {"op":"shutdown"}: stop admitting, run every queued job, exit.
 *  - SIGINT/SIGTERM (self-pipe): stop admitting, finish the in-flight
 *    batch, auto-checkpoint still-queued jobs to cfg.autosavePath.
 */

#ifndef TTDA_DAEMON_DAEMON_HH
#define TTDA_DAEMON_DAEMON_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "common/json.hh"
#include "serve/fleet.hh"
#include "ttda/machine.hh"
#include "vn/machine.hh"
#include "workloads/arrivals.hh"

namespace srv
{

/** Which machine tier a job runs on. */
enum class Tier : std::uint8_t { Ttda = 0, Vn = 1 };

/** A submitted job: one serving epoch, reproducible from this alone. */
struct JobSpec
{
    Tier tier = Tier::Ttda;
    std::string workload = "fib"; //!< ttda tier: workload name
    std::vector<graph::Value> args; //!< per-request arguments (ttda)
    std::uint64_t requests = 1;
    workloads::ArrivalConfig arrival; //!< seed lives here
    sim::fault::FaultPlan faults;     //!< resolved at admission

    // von Neumann request shape (vn tier only).
    std::uint32_t vnLoads = 4;
    std::uint32_t vnComputePerLoad = 8;
    std::uint64_t vnStride = 1;
};

enum class JobState : std::uint8_t
{
    Queued = 0,
    Running = 1,
    Done = 2,
    Failed = 3
};

/** One row of the daemon's job table. */
struct JobRecord
{
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Queued;
    serve::FleetJobResult result;    //!< ttda tier, when Done
    serve::VnFleetJobResult vnResult; //!< vn tier, when Done
    std::string error;               //!< when Failed
};

/** Daemon construction parameters. */
struct DaemonConfig
{
    /** TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
     *  from Daemon::port()). */
    std::uint16_t port = 0;
    ttda::MachineConfig machine;    //!< replica configuration
    vn::VnMachineConfig vnMachine;  //!< vn tier configuration
    serve::FleetConfig fleet;       //!< workers etc. (both tiers)
    /** Admission control: at most this many jobs Queued at once. */
    std::size_t maxQueuedJobs = 64;
    /** Admission control: per-job request-count cap. */
    std::uint64_t maxRequestsPerJob = 4096;
    /** Where SIGINT/SIGTERM auto-checkpoints unfinished jobs
     *  (empty = don't). */
    std::string autosavePath;
};

/**
 * The daemon. Usage: construct, start() (binds the socket and spawns
 * the executor; port() is valid after), then serve() on the thread
 * that should block in the network loop. requestShutdown() is the
 * programmatic SIGTERM — signal handlers call signalFd() writes.
 */
class Daemon
{
  public:
    explicit Daemon(const DaemonConfig &cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind + listen + spawn the executor thread. Throws
     *  std::runtime_error on socket failure. */
    void start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Run the poll() loop; returns when the daemon has shut down. */
    void serve();

    /** Trigger the signal-path shutdown (finish in-flight batch,
     *  auto-checkpoint queued jobs). Async-signal-safe. */
    void requestShutdown();

    /** Write end of the self-pipe, for sigaction handlers: a one-byte
     *  write() here triggers graceful shutdown. */
    int signalFd() const { return sigPipe_[1]; }

    /** Persist the job table (snapshot envelope). Throws
     *  sim::snapshot::Error / std::runtime_error on failure. */
    void saveCheckpoint(const std::string &path);

    /** Load a checkpoint into an idle daemon (call before serve(), or
     *  via the restore op while the job table is empty). */
    void loadCheckpoint(const std::string &path);

  private:
    struct Conn
    {
        int fd = -1;
        std::string inbox;  //!< bytes received, not yet line-split
        std::string outbox; //!< bytes queued for send
        bool watching = false;
        bool closing = false; //!< close once outbox drains
    };

    enum class Stop : std::uint8_t
    {
        None = 0,
        Drain = 1,    //!< shutdown op: run every queued job first
        Immediate = 2 //!< signal: finish in-flight batch only
    };

    void executorLoop();
    void runTtdaBatch(std::vector<std::uint64_t> ids,
                      std::unique_lock<std::mutex> &lk);
    void runVnBatch(std::vector<std::uint64_t> ids,
                    std::unique_lock<std::mutex> &lk);
    void wakeLoop();

    // Request handling (network thread; lock taken inside).
    std::string handleLine(Conn &conn, const std::string &line);
    sim::json::Value opSubmit(const sim::json::Value &req);
    sim::json::Value opStatus();
    sim::json::Value opResult(const sim::json::Value &req);
    sim::json::Value opCheckpoint(const sim::json::Value &req);
    sim::json::Value opRestore(const sim::json::Value &req);
    sim::json::Value opShutdown();

    void pushFrame(const sim::json::Value &frame); //!< callers hold mu_
    void deliverFrames();
    void closeAll();

    DaemonConfig cfg_;
    graph::Program program_; //!< all named workloads, built once
    std::map<std::string, std::uint16_t> workloadCb_;
    std::unique_ptr<serve::TtdaFleet> fleet_;
    std::unique_ptr<serve::VnFleet> vnFleet_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    int sigPipe_[2] = {-1, -1};  //!< signal self-pipe
    int wakePipe_[2] = {-1, -1}; //!< executor -> network loop
    std::vector<Conn> conns_;

    std::thread executor_;

    // Shared state; everything below is guarded by mu_.
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::uint64_t, JobRecord> jobs_;
    std::deque<std::uint64_t> queue_; //!< Queued job ids, FIFO
    std::uint64_t nextId_ = 1;
    Stop stop_ = Stop::None;
    bool draining_ = false;  //!< no further admissions
    bool execDone_ = false;  //!< executor thread has exited its loop
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t requestsCompleted_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t steals_ = 0; //!< accumulated across batches
    std::vector<std::uint64_t> jobsPerWorker_; //!< accumulated
    std::vector<std::string> pendingFrames_;
};

/** Resolve a fault plan at admission: seed 0 becomes a stable
 *  derivation from (machine seed, daemon job id). */
sim::fault::FaultPlan resolveJobFaults(const sim::fault::FaultPlan &plan,
                                       std::uint64_t machineSeed,
                                       std::uint64_t jobId);

} // namespace srv

#endif // TTDA_DAEMON_DAEMON_HH

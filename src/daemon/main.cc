/**
 * @file
 * ttda_simd — the simulation-as-a-service daemon binary.
 *
 * Binds 127.0.0.1:<port> (ephemeral by default), prints
 * "LISTENING <port>" once ready, and serves the newline-delimited JSON
 * protocol until a shutdown op or SIGINT/SIGTERM. See daemon.hh for
 * the protocol and scripts/simctl.py for the client.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/logging.hh"
#include "daemon/daemon.hh"

namespace
{

int gSignalFd = -1;

extern "C" void
onSignal(int)
{
    if (gSignalFd >= 0) {
        const char byte = '!';
        [[maybe_unused]] const ssize_t n =
            ::write(gSignalFd, &byte, 1);
    }
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --port N          TCP port on 127.0.0.1 (default 0 = "
        "ephemeral)\n"
        "  --workers N       fleet workers (default 2)\n"
        "  --pes N           ttda PEs per replica (default 8)\n"
        "  --threads N       host threads per replica (default 1)\n"
        "  --seed N          machine seed (default 1)\n"
        "  --reliable-net    wrap the fabric in ReliableNet\n"
        "  --vn-cores N      von Neumann cores (default 4)\n"
        "  --max-queue N     admission queue bound (default 64)\n"
        "  --max-requests N  per-job request cap (default 4096)\n"
        "  --autosave PATH   checkpoint unfinished jobs here on "
        "SIGINT/SIGTERM\n"
        "  --restore PATH    load a checkpoint before serving\n",
        argv0);
}

std::uint64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        sim::fatal("missing value for {}", argv[i]);
    return std::strtoull(argv[++i], nullptr, 0);
}

const char *
strArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        sim::fatal("missing value for {}", argv[i]);
    return argv[++i];
}

} // namespace

int
main(int argc, char **argv)
{
    srv::DaemonConfig cfg;
    cfg.machine.numPEs = 8;
    cfg.machine.threads = 1;
    cfg.machine.latencyStats = true; // per-request latency histograms
    cfg.fleet.workers = 2;
    cfg.fleet.captureStatsJson = true; // the bit-identity witness
    std::string restorePath;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--port")
            cfg.port = static_cast<std::uint16_t>(numArg(argc, argv, i));
        else if (a == "--workers")
            cfg.fleet.workers =
                static_cast<unsigned>(numArg(argc, argv, i));
        else if (a == "--pes")
            cfg.machine.numPEs =
                static_cast<std::uint32_t>(numArg(argc, argv, i));
        else if (a == "--threads")
            cfg.machine.threads =
                static_cast<std::uint32_t>(numArg(argc, argv, i));
        else if (a == "--seed") {
            cfg.machine.seed = numArg(argc, argv, i);
            cfg.vnMachine.seed = cfg.machine.seed;
        } else if (a == "--reliable-net")
            cfg.machine.reliableNet = true;
        else if (a == "--vn-cores")
            cfg.vnMachine.numCores =
                static_cast<std::uint32_t>(numArg(argc, argv, i));
        else if (a == "--max-queue")
            cfg.maxQueuedJobs =
                static_cast<std::size_t>(numArg(argc, argv, i));
        else if (a == "--max-requests")
            cfg.maxRequestsPerJob = numArg(argc, argv, i);
        else if (a == "--autosave")
            cfg.autosavePath = strArg(argc, argv, i);
        else if (a == "--restore")
            restorePath = strArg(argc, argv, i);
        else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            sim::fatal("unknown option {}", a);
        }
    }

    srv::Daemon daemon(cfg);
    daemon.start();
    if (!restorePath.empty())
        daemon.loadCheckpoint(restorePath);

    gSignalFd = daemon.signalFd();
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::printf("LISTENING %u\n", daemon.port());
    std::fflush(stdout);

    daemon.serve();
    return 0;
}

#include "ttda/machine.hh"

#include <ostream>
#include <sstream>

#include "common/format.hh"
#include "common/logging.hh"
#include "net/crossbar.hh"
#include "net/hierarchical.hh"
#include "net/hypercube.hh"
#include "net/ideal.hh"
#include "net/omega.hh"

namespace ttda
{

namespace
{

/** Token::born keeps only the low 32 bits of the cycle; deltas
 *  computed in 32-bit arithmetic stay exact for any latency < 2^32
 *  cycles even across a wrap. */
std::uint32_t
stamp(sim::Cycle c)
{
    return static_cast<std::uint32_t>(c);
}

std::uint32_t
sinceStamp(sim::Cycle now, std::uint32_t born)
{
    return static_cast<std::uint32_t>(now) - born;
}

std::unique_ptr<net::Network<graph::Token>>
makeNetwork(const MachineConfig &cfg)
{
    using Topology = MachineConfig::Topology;
    switch (cfg.topology) {
      case Topology::Ideal:
        return std::make_unique<net::IdealNetwork<graph::Token>>(
            cfg.numPEs, cfg.netLatency, cfg.netJitter, cfg.seed);
      case Topology::Crossbar:
        return std::make_unique<net::Crossbar<graph::Token>>(
            cfg.numPEs, cfg.netLatency);
      case Topology::Hypercube:
        SIM_ASSERT_MSG(net::detail::isPow2(cfg.numPEs) &&
                           cfg.numPEs >= 2,
                       "hypercube machine needs 2^d >= 2 PEs, got {}",
                       cfg.numPEs);
        return std::make_unique<net::Hypercube<graph::Token>>(
            net::detail::log2(cfg.numPEs), cfg.hopLatency);
      case Topology::Omega:
        SIM_ASSERT_MSG(net::detail::isPow2(cfg.numPEs) &&
                           cfg.numPEs >= 2,
                       "omega machine needs 2^k >= 2 PEs, got {}",
                       cfg.numPEs);
        return std::make_unique<net::OmegaNet<graph::Token>>(
            cfg.numPEs);
      case Topology::Hierarchical:
        return std::make_unique<net::HierarchicalNet<graph::Token>>(
            cfg.numPEs, cfg.clusterSize, cfg.localLatency,
            cfg.globalLatency);
    }
    sim::panic("unknown topology");
}

} // namespace

Machine::Machine(const graph::Program &program, MachineConfig config)
    : program_(program), cfg_(config), executor_(program, contexts_)
{
    SIM_ASSERT_MSG(cfg_.numPEs >= 1, "machine needs at least one PE");
    program_.validate();
    net_ = makeNetwork(cfg_);
    pes_.reserve(cfg_.numPEs);
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p)
        pes_.push_back(std::make_unique<Pe>(cfg_.isWordsPerPe));

    // Resolve the per-opcode ALU latency map into a flat table once;
    // the fire path then never touches the std::map.
    SIM_ASSERT_MSG(cfg_.aluCycles >= 1, "aluCycles must be >= 1");
    aluLatency_.fill(cfg_.aluCycles);
    for (const auto &[op, latency] : cfg_.opLatency) {
        SIM_ASSERT_MSG(latency >= 1, "opLatency[{}] must be >= 1",
                       graph::opcodeName(op));
        aluLatency_[static_cast<std::size_t>(op)] = latency;
    }

    observing_ = cfg_.latencyStats;
    if (cfg_.tracer && cfg_.tracer->active()) {
        observing_ = true;
        nameTraceTracks();
        net_->setTracer(cfg_.tracer, cfg_.numPEs);
    }
}

void
Machine::nameTraceTracks()
{
    sim::Tracer &t = *cfg_.tracer;
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        t.processName(p, sim::format("pe{}", p));
        t.threadName(p, kTidWm, "wait-match");
        t.threadName(p, kTidFetch, "fetch");
        t.threadName(p, kTidAlu, "alu");
        t.threadName(p, kTidOutput, "output");
        t.threadName(p, kTidIstr, "istructure");
    }
    t.processName(cfg_.numPEs, "network");
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p)
        t.threadName(cfg_.numPEs, p, sim::format("port{}", p));
}

Machine::~Machine() = default;

sim::NodeId
Machine::mapTag(const graph::Tag &tag) const
{
    switch (cfg_.mapping) {
      case MachineConfig::Mapping::HashTag:
        return static_cast<sim::NodeId>(graph::TagHash{}(tag) %
                                        cfg_.numPEs);
      case MachineConfig::Mapping::ByContext: {
        std::uint64_t z = tag.ctx + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        return static_cast<sim::NodeId>(z % cfg_.numPEs);
      }
      case MachineConfig::Mapping::ByIteration:
        return static_cast<sim::NodeId>(
            (static_cast<std::uint64_t>(tag.ctx) * 31 + tag.iter) %
            cfg_.numPEs);
      case MachineConfig::Mapping::SinglePe:
        return 0;
    }
    sim::panic("unknown mapping policy");
}

sim::NodeId
Machine::mapToken(const graph::Token &t) const
{
    switch (t.kind) {
      case graph::TokenKind::Normal:
        return mapTag(t.tag);
      case graph::TokenKind::IsFetch:
      case graph::TokenKind::IsStore:
        return static_cast<sim::NodeId>(t.addr % cfg_.numPEs);
      case graph::TokenKind::IsAlloc:
      case graph::TokenKind::IsAppend:
        // Serviced by any controller; keep it where the request's
        // reply will be needed to save a network trip.
        return mapTag(t.reply.tag);
      case graph::TokenKind::Output:
        return 0; // the host's PE controller
    }
    sim::panic("unknown token kind");
}

std::uint64_t
Machine::allocateGlobal(std::uint64_t n)
{
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(cfg_.isWordsPerPe) * cfg_.numPEs;
    SIM_ASSERT_MSG(allocPtr_ + n <= capacity,
                   "i-structure storage exhausted: {} + {} > {}",
                   allocPtr_, n, capacity);
    const std::uint64_t base = allocPtr_;
    allocPtr_ += n;
    return base;
}

void
Machine::route(sim::NodeId src, graph::Token t)
{
    const sim::NodeId dst = mapToken(t);
    t.pe = dst;
    if (cfg_.localBypass && dst == src) {
        pes_[src]->stats.bypassTokens.inc();
        pes_[src]->inQ.push_back(std::move(t));
        ++activeItems_;
    } else {
        net_->send(src, dst, std::move(t));
    }
}

void
Machine::input(std::uint16_t cb, std::uint16_t param, graph::Value v)
{
    const graph::CodeBlock &block = program_.codeBlock(cb);
    SIM_ASSERT_MSG(param < block.numParams,
                   "input param {} beyond the {} params of '{}'", param,
                   block.numParams, block.name);
    graph::Token t;
    t.kind = graph::TokenKind::Normal;
    t.tag = graph::Tag{graph::rootContext, cb, param, 1};
    t.port = 0;
    t.nt = block.at(param).nt;
    t.data = std::move(v);
    if (observing_)
        t.seq = tokenSeq_++;
    const sim::NodeId dst = mapToken(t);
    t.pe = dst;
    pes_[dst]->inQ.push_back(std::move(t));
    ++activeItems_;
}

graph::IPtr
Machine::preload(const std::vector<graph::Value> &values)
{
    const std::uint64_t base = allocateGlobal(values.size());
    std::vector<std::pair<graph::IsCont, graph::Value>> no_wake;
    for (std::size_t k = 0; k < values.size(); ++k) {
        const std::uint64_t addr = base + k;
        pes_[addr % cfg_.numPEs]->isStore.store(addr / cfg_.numPEs,
                                                values[k], no_wake);
    }
    SIM_ASSERT(no_wake.empty());
    return graph::IPtr{base, static_cast<std::uint32_t>(values.size())};
}

void
Machine::stepInput(Pe &pe, sim::NodeId id)
{
    // The waiting-matching section accepts one token per cycle; a
    // multi-cycle match holds the stage busy.
    if (tickBusy(pe.matchBusy, pe.stats.matchBusyCycles))
        return;
    if (pe.inQ.empty())
        return;
    graph::Token tok = std::move(pe.inQ.front());
    pe.inQ.pop_front();
    --activeItems_;
    pe.stats.tokensIn.inc();
    if (cfg_.trace) {
        *cfg_.trace << now_ << " pe" << tok.pe << " in    " << tok
                    << "\n";
    }

    using graph::TokenKind;
    switch (tok.kind) {
      case TokenKind::Normal: {
        if (tok.nt == 1) {
            // Monadic tokens go straight to instruction fetch.
            SIM_TRACE(cfg_.tracer, Fire, complete, id, kTidFetch,
                      "fetch", now_, cfg_.fetchCycles,
                      sim::format("\"tag\":\"{}\",\"seq\":{}", tok.tag,
                                  tok.seq));
            std::vector<graph::Value> ops = takeSlots(1);
            ops[0] = std::move(tok.data);
            pe.fetchQ.push_back(ReadyOp{
                graph::EnabledInstruction{tok.tag, std::move(ops)},
                now_ + cfg_.fetchCycles, tok.born});
            ++activeItems_;
            break;
        }
        pe.stats.matchBusyCycles.inc();
        sim::Cycle busy = cfg_.matchCycles - 1;
        auto [it, inserted] = pe.waitStore.try_emplace(tok.tag);
        if (inserted) {
            ++wmTotal_;
            if (cfg_.matchCapacity != 0 &&
                pe.waitStore.size() > cfg_.matchCapacity)
            {
                // Associative store full: the entry spills to overflow
                // memory; the section stalls for the slow access.
                pe.stats.matchOverflows.inc();
                busy += cfg_.matchOverflowPenalty;
            }
        }
        setBusy(pe.matchBusy, busy);
        Waiting &w = it->second;
        if (w.expected == 0) {
            SIM_ASSERT_MSG(tok.nt <= 64,
                           "instruction with {} input ports exceeds "
                           "the matching bitmask", tok.nt);
            w.expected = tok.nt;
            w.slots = takeSlots(tok.nt);
            w.filled = 0;
        }
        SIM_ASSERT_MSG(tok.port < w.expected,
                       "token port {} out of range (nt {})", tok.port,
                       w.expected);
        SIM_ASSERT_MSG(!(w.filled >> tok.port & 1u),
                       "duplicate token for activity {} port {}: slot "
                       "already filled (non-deterministic graph?)",
                       tok.tag, tok.port);
        w.filled |= std::uint64_t{1} << tok.port;
        w.slots[tok.port] = std::move(tok.data);
        w.arrived += 1;
        pe.stats.waitStorePeak = std::max<std::uint64_t>(
            pe.stats.waitStorePeak, pe.waitStore.size());
        if (w.arrived == w.expected) {
            SIM_TRACE(cfg_.tracer, Wm, complete, id, kTidWm, "match",
                      now_, busy + 1,
                      sim::format("\"tag\":\"{}\",\"seq\":{}", tok.tag,
                                  tok.seq));
            SIM_TRACE(cfg_.tracer, Fire, complete, id, kTidFetch,
                      "fetch", now_, cfg_.fetchCycles,
                      sim::format("\"tag\":\"{}\"", tok.tag));
            auto node = pe.waitStore.extract(it);
            --wmTotal_;
            pe.fetchQ.push_back(ReadyOp{
                graph::EnabledInstruction{
                    tok.tag, std::move(node.mapped().slots)},
                now_ + cfg_.fetchCycles, tok.born});
            ++activeItems_;
        } else {
            SIM_TRACE(cfg_.tracer, Wm, instant, id, kTidWm, "enq",
                      now_,
                      sim::format("\"tag\":\"{}\",\"port\":{},"
                                  "\"arrived\":{},\"expected\":{}",
                                  tok.tag,
                                  static_cast<unsigned>(tok.port),
                                  static_cast<unsigned>(w.arrived),
                                  static_cast<unsigned>(w.expected)));
        }
        break;
      }

      case TokenKind::IsFetch:
      case TokenKind::IsStore:
      case TokenKind::IsAlloc:
      case TokenKind::IsAppend:
        pe.isQ.push_back(std::move(tok));
        ++activeItems_;
        break;

      case TokenKind::Output:
        if (cfg_.trace) {
            *cfg_.trace << now_ << " OUTPUT " << tok.data << "\n";
        }
        SIM_TRACE(cfg_.tracer, Sched, instant, id, kTidWm, "result",
                  now_,
                  sim::format("\"value\":\"{}\",\"seq\":{}", tok.data,
                              tok.seq));
        outputs_.push_back(OutputRecord{tok.tag, std::move(tok.data)});
        break;
    }
}

void
Machine::stepAlu(Pe &pe, sim::NodeId id)
{
    if (tickBusy(pe.aluBusy, pe.stats.aluBusyCycles))
        return;
    if (pe.fetchQ.empty() || pe.fetchQ.front().readyAt > now_)
        return;
    ReadyOp op = std::move(pe.fetchQ.front());
    pe.fetchQ.pop_front();
    --activeItems_;

    // Append the compile-time constant, if any, as the last operand.
    const graph::Instruction &in = program_.instruction(
        op.enabled.tag.codeBlock, op.enabled.tag.stmt);
    if (in.constant)
        op.enabled.operands.push_back(*in.constant);

    if (cfg_.trace) {
        *cfg_.trace << now_ << " fire  " << op.enabled.tag << " "
                    << graph::opcodeName(in.op) << "\n";
    }
    const sim::Cycle lat = aluLatency_[static_cast<std::size_t>(in.op)];
    if (observing_)
        birthToFire_.sample(sinceStamp(now_, op.born));
    SIM_TRACE(cfg_.tracer, Fire, complete, id, kTidAlu,
              graph::opcodeName(in.op), now_, lat,
              sim::format("\"tag\":\"{}\",\"wait\":{}", op.enabled.tag,
                          sinceStamp(now_, op.born)));
    fireBuf_.clear();
    executor_.execute(op.enabled, fireBuf_);
    recycleSlots(std::move(op.enabled.operands));
    pe.stats.fired.inc();
    pe.stats.aluBusyCycles.inc();
    setBusy(pe.aluBusy, lat - 1);
    for (auto &t : fireBuf_) {
        if (observing_) {
            t.seq = tokenSeq_++;
            t.born = stamp(now_);
        }
        pe.outQ.push_back(std::move(t));
        ++activeItems_;
    }
}

void
Machine::stepIs(Pe &pe, sim::NodeId id)
{
    if (tickBusy(pe.isBusy, pe.stats.isBusyCycles))
        return;
    if (pe.isQ.empty())
        return;
    graph::Token tok = std::move(pe.isQ.front());
    pe.isQ.pop_front();
    --activeItems_;
    pe.stats.isBusyCycles.inc();

    std::vector<std::pair<graph::IsCont, graph::Value>> served;
    using graph::TokenKind;
    switch (tok.kind) {
      case TokenKind::IsFetch: {
        SIM_ASSERT_MSG(tok.addr % cfg_.numPEs == id,
                       "i-structure fetch for word {} misrouted to PE "
                       "{}", tok.addr, id);
        setBusy(pe.isBusy, cfg_.isReadCycles - 1);
        SIM_TRACE(cfg_.tracer, Istr, complete, id, kTidIstr, "read",
                  now_, cfg_.isReadCycles,
                  sim::format("\"addr\":{}", tok.addr));
        // Without lifecycle stamping the token's born field is 0; use
        // the controller arrival cycle so the deadlock report still
        // dates parked reads.
        if (!pe.isStore.fetch(tok.addr / cfg_.numPEs,
                              graph::IsCont{.born = observing_
                                                ? tok.born
                                                : stamp(now_),
                                            .cont = tok.reply},
                              served))
        {
            SIM_TRACE(cfg_.tracer, Istr, instant, id, kTidIstr,
                      "defer", now_,
                      sim::format("\"addr\":{},\"reader\":\"{}\"",
                                  tok.addr, tok.reply.tag));
        }
        break;
      }
      case TokenKind::IsStore: {
        SIM_ASSERT_MSG(tok.addr % cfg_.numPEs == id,
                       "i-structure store for word {} misrouted to PE "
                       "{}", tok.addr, id);
        setBusy(pe.isBusy, cfg_.isWriteCycles - 1);
        SIM_TRACE(cfg_.tracer, Istr, complete, id, kTidIstr, "write",
                  now_, cfg_.isWriteCycles,
                  sim::format("\"addr\":{}", tok.addr));
        if (!pe.isStore.store(tok.addr / cfg_.numPEs, tok.data,
                              served))
        {
            sim::warn("machine: multiple write to i-structure cell {}",
                      tok.addr);
        }
        break;
      }
      case TokenKind::IsAlloc: {
        setBusy(pe.isBusy, cfg_.isReadCycles - 1);
        const auto n = static_cast<std::uint64_t>(tok.data.asInt());
        const std::uint64_t base = allocateGlobal(n);
        SIM_TRACE(cfg_.tracer, Istr, complete, id, kTidIstr, "alloc",
                  now_, cfg_.isReadCycles,
                  sim::format("\"base\":{},\"words\":{}", base, n));
        graph::Token reply;
        reply.kind = TokenKind::Normal;
        reply.tag = tok.reply.tag;
        reply.port = tok.reply.port;
        reply.nt = tok.reply.nt;
        reply.data = graph::Value{
            graph::IPtr{base, static_cast<std::uint32_t>(n)}};
        if (observing_) {
            reply.seq = tokenSeq_++;
            reply.born = stamp(now_);
        }
        pe.outQ.push_back(std::move(reply));
        ++activeItems_;
        break;
      }
      case TokenKind::IsAppend: {
        // Functional update: allocate and copy. The copy touches
        // cells on every PE; it is modelled as a block operation of
        // this controller charged read+write time per element (the
        // real machine would stream per-cell requests). A source cell
        // not yet written is copied non-strictly: a deferred read is
        // parked on it whose continuation stores into the new cell
        // when the producer's write lands.
        const auto len = static_cast<std::uint32_t>(tok.aux >> 32);
        const std::uint64_t idx = tok.aux & 0xffffffffu;
        const sim::Cycle appendCost =
            len > 0 ? static_cast<sim::Cycle>(len) *
                          (cfg_.isReadCycles + cfg_.isWriteCycles)
                    : cfg_.isReadCycles;
        setBusy(pe.isBusy, appendCost - 1);
        const std::uint64_t base = allocateGlobal(len);
        SIM_TRACE(cfg_.tracer, Istr, complete, id, kTidIstr, "append",
                  now_, appendCost,
                  sim::format("\"src\":{},\"dst\":{},\"len\":{}",
                              tok.addr, base, len));
        for (std::uint32_t k = 0; k < len; ++k) {
            const std::uint64_t dst = base + k;
            if (k == idx) {
                pes_[dst % cfg_.numPEs]->isStore.store(
                    dst / cfg_.numPEs, tok.data, served);
                continue;
            }
            const std::uint64_t src = tok.addr + k;
            // The parked continuation lives on the *source* cell's
            // controller; its wake-up is emitted from that PE.
            std::vector<std::pair<graph::IsCont, graph::Value>> now;
            pes_[src % cfg_.numPEs]->isStore.fetch(
                src / cfg_.numPEs,
                graph::IsCont{.toCell = true, .cellAddr = dst}, now);
            for (auto &[cont, value] : now) {
                pes_[dst % cfg_.numPEs]->isStore.store(
                    dst / cfg_.numPEs, value, served);
            }
        }
        graph::Token reply;
        reply.kind = TokenKind::Normal;
        reply.tag = tok.reply.tag;
        reply.port = tok.reply.port;
        reply.nt = tok.reply.nt;
        reply.data = graph::Value{graph::IPtr{base, len}};
        if (observing_) {
            reply.seq = tokenSeq_++;
            reply.born = stamp(now_);
        }
        pe.outQ.push_back(std::move(reply));
        ++activeItems_;
        break;
      }
      default:
        sim::panic("non-structure token in i-structure queue");
    }

    for (auto &[cont, value] : served) {
        graph::Token t;
        if (cont.toCell) {
            // A copy target: forward the datum as a store to the new
            // structure's cell (routed to its controller).
            t.kind = TokenKind::IsStore;
            t.addr = cont.cellAddr;
            t.data = value;
        } else {
            t.kind = TokenKind::Normal;
            t.tag = cont.cont.tag;
            t.port = cont.cont.port;
            t.nt = cont.cont.nt;
            t.data = value;
            // Read-issue-to-response latency; a response emitted by a
            // STORE (or a copy's write) is a read that sat deferred.
            if (observing_)
                readLatency_.sample(sinceStamp(now_, cont.born));
            if (tok.kind != TokenKind::IsFetch) {
                SIM_TRACE(cfg_.tracer, Istr, instant, id, kTidIstr,
                          "serve", now_,
                          sim::format("\"reader\":\"{}\",\"lat\":{}",
                                      cont.cont.tag,
                                      sinceStamp(now_, cont.born)));
            }
        }
        if (observing_) {
            t.seq = tokenSeq_++;
            t.born = stamp(now_);
        }
        pe.outQ.push_back(std::move(t));
        ++activeItems_;
    }
}

void
Machine::stepOutput(Pe &pe, sim::NodeId id)
{
    for (std::uint32_t k = 0;
         k < cfg_.outputBandwidth && !pe.outQ.empty(); ++k)
    {
        graph::Token t = std::move(pe.outQ.front());
        pe.outQ.pop_front();
        --activeItems_;
        pe.stats.outputTokens.inc();
        SIM_TRACE(cfg_.tracer, Sched, instant, id, kTidOutput, "out",
                  now_, sim::format("\"seq\":{}", t.seq));
        route(id, std::move(t));
    }
}

bool
Machine::idle() const
{
    // activeItems_ and busyStages_ are maintained incrementally at
    // every queue push/pop and busy-countdown transition, so going
    // idle is a constant-time check instead of an O(numPEs) sweep.
    return activeItems_ == 0 && busyStages_ == 0 && net_->idle();
}

void
Machine::skipAhead()
{
    // Earliest cycle at which any pipeline stage or the network can
    // act. A stage draining a busy countdown next acts when the
    // countdown expires; a non-empty queue behind an idle stage acts
    // now; the fetch pipeline also waits for the head's readyAt.
    sim::Cycle next = sim::neverCycle;
    for (const auto &pe_ptr : pes_) {
        const Pe &pe = *pe_ptr;
        if (pe.matchBusy > 0 || !pe.inQ.empty())
            next = std::min(next, now_ + pe.matchBusy);
        if (pe.aluBusy > 0 || !pe.fetchQ.empty()) {
            sim::Cycle c = now_ + pe.aluBusy;
            if (!pe.fetchQ.empty())
                c = std::max(c, pe.fetchQ.front().readyAt);
            next = std::min(next, c);
        }
        if (pe.isBusy > 0 || !pe.isQ.empty())
            next = std::min(next, now_ + pe.isBusy);
        if (!pe.outQ.empty())
            next = std::min(next, now_);
        if (next <= now_)
            return; // something is due this very cycle
    }
    next = std::min(next, net_->nextDelivery());
    if (next <= now_)
        return;
    SIM_ASSERT_MSG(next != sim::neverCycle,
                   "skip-ahead with no pending event (idle() bug)");

    // Jump. Batch-account what the skipped cycles would have done one
    // by one: drain busy countdowns into their busy-cycle counters and
    // take one wm-residency sample per skipped cycle (the residency
    // cannot change while every matching section is stalled or empty).
    const sim::Cycle delta = next - now_;
    for (const auto &pe_ptr : pes_) {
        Pe &pe = *pe_ptr;
        batchBusy(pe.matchBusy, pe.stats.matchBusyCycles, delta);
        batchBusy(pe.aluBusy, pe.stats.aluBusyCycles, delta);
        batchBusy(pe.isBusy, pe.stats.isBusyCycles, delta);
    }
    wmResidency_.sample(static_cast<double>(wmTotal_), delta);
    // Resynchronize the network's internal clock so tokens sent in the
    // first iteration after the jump get the correct issue stamp. By
    // the nextDelivery() contract nothing can retire before `next`, so
    // one step() call reproduces the skipped cycles' no-op steps.
    net_->step(next - 1);
    now_ = next;
    SIM_ASSERT_MSG(now_ < cfg_.maxCycles,
                   "machine exceeded {} cycles; livelock?",
                   cfg_.maxCycles);
}

std::vector<OutputRecord>
Machine::run()
{
    while (!idle()) {
        // Jump over cycles in which nothing can happen. The jump may
        // drain the last busy countdowns and reach quiescence exactly
        // where the naive per-cycle loop would have stopped.
        skipAhead();
        if (idle())
            break;
        for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
            Pe &pe = *pes_[p];
            stepInput(pe, p);
            stepAlu(pe, p);
            stepIs(pe, p);
            stepOutput(pe, p);
        }
        net_->step(now_);
        ++now_;
        for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
            if (auto tok = net_->receive(p)) {
                pes_[p]->inQ.push_back(std::move(*tok));
                ++activeItems_;
            }
        }
        wmResidency_.sample(static_cast<double>(wmTotal_));
        SIM_ASSERT_MSG(now_ < cfg_.maxCycles,
                       "machine exceeded {} cycles; livelock?",
                       cfg_.maxCycles);
    }

    // Quiescent. Unmatched partners or parked reads mean deadlock.
    deadlocked_ = outstandingReads() > 0;
    for (const auto &pe : pes_)
        if (!pe->waitStore.empty())
            deadlocked_ = true;
    return outputs_;
}

std::string
Machine::deadlockReport() const
{
    // Per-section caps keep a pathological run's report readable.
    constexpr std::size_t kMaxPerSection = 16;

    std::size_t stranded = 0;
    for (const auto &pe : pes_)
        stranded += pe->waitStore.size();

    std::ostringstream os;
    os << "deadlock report: " << outstandingReads()
       << " parked reads, " << stranded
       << " stranded activities\n";

    // 1. I-structure cells that were never written, and who waits.
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        const auto &store = pes_[p]->isStore;
        for (auto local : store.deferredAddresses(kMaxPerSection)) {
            const auto &readers = store.deferredList(local);
            os << "  i-structure cell " << local * cfg_.numPEs + p
               << " (PE " << p << ", local " << local
               << ") was never written; " << readers.size()
               << " parked reader(s):\n";
            std::size_t shown = 0;
            for (const auto &cont : readers) {
                if (++shown > kMaxPerSection) {
                    os << "    ... " << readers.size() - kMaxPerSection
                       << " more\n";
                    break;
                }
                if (cont.toCell) {
                    os << "    copy into cell " << cont.cellAddr
                       << " (APPEND in progress)\n";
                } else {
                    os << "    reader " << cont.cont.tag << " port "
                       << static_cast<unsigned>(cont.cont.port)
                       << " (read issued cycle " << cont.born << ")\n";
                }
            }
        }
    }

    // 2. Waiting-matching entries still holding partial operand sets.
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        const auto &ws = pes_[p]->waitStore;
        if (ws.empty())
            continue;
        os << "  PE " << p << ": " << ws.size()
           << " activities still waiting for partner tokens:\n";
        std::size_t shown = 0;
        for (const auto &[tag, w] : ws) {
            if (++shown > kMaxPerSection) {
                os << "    ... " << ws.size() - kMaxPerSection
                   << " more\n";
                break;
            }
            os << "    " << tag << ": "
               << static_cast<unsigned>(w.arrived) << "/"
               << static_cast<unsigned>(w.expected)
               << " ports filled (mask 0x" << std::hex << w.filled
               << std::dec << "), missing port(s)";
            for (std::uint8_t port = 0; port < w.expected; ++port) {
                if (!(w.filled >> port & 1u))
                    os << " " << static_cast<unsigned>(port);
            }
            os << "\n";
        }
    }

    // 3. Packets the network accepted but never delivered (should be
    // zero at quiescence; nonzero means the run stopped mid-flight).
    const auto &ns = net_->stats();
    const std::uint64_t inFlight =
        ns.sent.value() - ns.delivered.value();
    if (inFlight != 0) {
        os << "  network: " << inFlight << " packet(s) in flight ("
           << ns.sent.value() << " sent, " << ns.delivered.value()
           << " delivered)\n";
    }
    return os.str();
}

std::size_t
Machine::outstandingReads() const
{
    std::size_t n = 0;
    for (const auto &pe : pes_)
        n += pe->isStore.outstandingReads();
    return n;
}

std::uint64_t
Machine::totalFired() const
{
    std::uint64_t n = 0;
    for (const auto &pe : pes_)
        n += pe->stats.fired.value();
    return n;
}

double
Machine::aluUtilization() const
{
    if (now_ == 0)
        return 0.0;
    std::uint64_t busy = 0;
    for (const auto &pe : pes_)
        busy += pe->stats.aluBusyCycles.value();
    return static_cast<double>(busy) /
           (static_cast<double>(now_) * cfg_.numPEs);
}

double
Machine::opsPerCycle() const
{
    return now_ ? static_cast<double>(totalFired()) / now_ : 0.0;
}

const PeStats &
Machine::peStats(std::uint32_t pe) const
{
    SIM_ASSERT(pe < pes_.size());
    return pes_[pe]->stats;
}

const net::NetStats &
Machine::netStats() const
{
    return net_->stats();
}

std::vector<sim::StatGroup>
Machine::statGroups() const
{
    std::vector<sim::StatGroup> groups;
    sim::StatGroup machine("machine");
    machine.set("cycles", static_cast<double>(now_));
    machine.set("activities", static_cast<double>(totalFired()));
    machine.set("opsPerCycle", opsPerCycle());
    machine.set("aluUtilization", aluUtilization());
    machine.set("contextsCreated",
                static_cast<double>(contexts_.totalCreated()));
    machine.set("netPacketsSent",
                static_cast<double>(net_->stats().sent.value()));
    machine.set("netMeanLatency", net_->stats().latency.mean());
    const auto is = istructureTotals();
    machine.set("isFetches", static_cast<double>(is.fetches.value()));
    machine.set("isFetchesDeferred",
                static_cast<double>(is.fetchesDeferred.value()));
    machine.set("isStores", static_cast<double>(is.stores.value()));
    groups.push_back(std::move(machine));

    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        const PeStats &st = pes_[p]->stats;
        sim::StatGroup pe(sim::format("pe{}", p));
        pe.set("tokensIn", static_cast<double>(st.tokensIn.value()));
        pe.set("fired", static_cast<double>(st.fired.value()));
        pe.set("matchBusyCycles",
               static_cast<double>(st.matchBusyCycles.value()));
        pe.set("aluBusyCycles",
               static_cast<double>(st.aluBusyCycles.value()));
        pe.set("isBusyCycles",
               static_cast<double>(st.isBusyCycles.value()));
        pe.set("outputTokens",
               static_cast<double>(st.outputTokens.value()));
        pe.set("bypassTokens",
               static_cast<double>(st.bypassTokens.value()));
        pe.set("matchOverflows",
               static_cast<double>(st.matchOverflows.value()));
        pe.set("waitStorePeak", static_cast<double>(st.waitStorePeak));
        groups.push_back(std::move(pe));
    }
    return groups;
}

void
Machine::dumpStats(std::ostream &os) const
{
    for (const auto &group : statGroups())
        group.dump(os);
}

void
Machine::dumpStatsJson(std::ostream &os) const
{
    os << '{';
    for (const auto &group : statGroups()) {
        os << '"' << group.name() << "\":";
        group.dumpJson(os);
        os << ',';
    }
    os << "\"histograms\":{\"wmResidency\":";
    wmResidency_.dumpJson(os);
    os << ",\"birthToFire\":";
    birthToFire_.dumpJson(os);
    os << ",\"readLatency\":";
    readLatency_.dumpJson(os);
    os << "}}\n";
}

mem::IStructureStats
Machine::istructureTotals() const
{
    mem::IStructureStats total;
    for (const auto &pe : pes_) {
        const auto &s = pe->isStore.stats();
        total.fetches.inc(s.fetches.value());
        total.fetchesDeferred.inc(s.fetchesDeferred.value());
        total.stores.inc(s.stores.value());
        total.deferredServed.inc(s.deferredServed.value());
        total.multipleWrites.inc(s.multipleWrites.value());
    }
    return total;
}

} // namespace ttda

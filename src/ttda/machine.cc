#include "ttda/machine.hh"

#include <ostream>
#include <sstream>

#include "common/format.hh"
#include "common/logging.hh"
#include "net/crossbar.hh"
#include "net/hierarchical.hh"
#include "net/hypercube.hh"
#include "net/ideal.hh"
#include "net/omega.hh"

namespace ttda
{

namespace
{

/** Token::born keeps only the low 32 bits of the cycle; deltas
 *  computed in 32-bit arithmetic stay exact for any latency < 2^32
 *  cycles even across a wrap. */
std::uint32_t
stamp(sim::Cycle c)
{
    return static_cast<std::uint32_t>(c);
}

std::uint32_t
sinceStamp(sim::Cycle now, std::uint32_t born)
{
    return static_cast<std::uint32_t>(now) - born;
}

/** Opcodes whose firing reads or mutates the shared ContextManager.
 *  Context ids are interned in arrival order, and that order leaks
 *  into tag hashes and thus PE mapping, so these fires must execute
 *  in the serial phase to stay bit-identical across thread counts. */
bool
touchesContext(graph::Opcode op)
{
    switch (op) {
      case graph::Opcode::LoopEntry:
      case graph::Opcode::LoopExit:
      case graph::Opcode::Apply:
      case graph::Opcode::Return:
        return true;
      default:
        return false;
    }
}

/** Build the configured topology carrying payload P — the plain token
 *  for an unprotected machine, Envelope<Token> under ReliableNet. */
template <typename P>
std::unique_ptr<net::Network<P>>
makeNetwork(const MachineConfig &cfg)
{
    using Topology = MachineConfig::Topology;
    switch (cfg.topology) {
      case Topology::Ideal:
        return std::make_unique<net::IdealNetwork<P>>(
            cfg.numPEs, cfg.netLatency, cfg.netJitter, cfg.seed);
      case Topology::Crossbar:
        return std::make_unique<net::Crossbar<P>>(cfg.numPEs,
                                                  cfg.netLatency);
      case Topology::Hypercube:
        SIM_ASSERT_MSG(net::detail::isPow2(cfg.numPEs) &&
                           cfg.numPEs >= 2,
                       "hypercube machine needs 2^d >= 2 PEs, got {}",
                       cfg.numPEs);
        return std::make_unique<net::Hypercube<P>>(
            net::detail::log2(cfg.numPEs), cfg.hopLatency);
      case Topology::Omega:
        SIM_ASSERT_MSG(net::detail::isPow2(cfg.numPEs) &&
                           cfg.numPEs >= 2,
                       "omega machine needs 2^k >= 2 PEs, got {}",
                       cfg.numPEs);
        return std::make_unique<net::OmegaNet<P>>(cfg.numPEs);
      case Topology::Hierarchical:
        return std::make_unique<net::HierarchicalNet<P>>(
            cfg.numPEs, cfg.clusterSize, cfg.localLatency,
            cfg.globalLatency);
    }
    sim::panic("unknown topology");
}

/** SplitMix64 finalizer: derive the fault stream's seed from the
 *  machine's root seed when the plan leaves it 0. */
std::uint64_t
deriveFaultSeed(std::uint64_t root)
{
    std::uint64_t z = root + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Machine::Machine(const graph::Program &program, MachineConfig config)
    : program_(program), cfg_(config)
{
    SIM_ASSERT_MSG(cfg_.numPEs >= 1, "machine needs at least one PE");
    program_.validate();
    if (cfg_.faults.enabled()) {
        sim::fault::FaultPlan plan = cfg_.faults;
        if (plan.seed == 0)
            plan.seed = deriveFaultSeed(cfg_.seed);
        faults_ = std::make_unique<sim::fault::FaultInjector>(plan);
    }
    if (cfg_.reliableNet) {
        auto rel = std::make_unique<net::ReliableNet<graph::Token>>(
            makeNetwork<net::Envelope<graph::Token>>(cfg_),
            cfg_.retry);
        rel_ = rel.get();
        net_ = std::move(rel);
    } else {
        net_ = makeNetwork<graph::Token>(cfg_);
    }
    if (faults_)
        net_->setFaultInjector(faults_.get());
    pes_.reserve(cfg_.numPEs);
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p)
        pes_.push_back(std::make_unique<Pe>(cfg_.isWordsPerPe));

    // Resolve the per-opcode ALU latency map into a flat table once;
    // the fire path then never touches the std::map.
    SIM_ASSERT_MSG(cfg_.aluCycles >= 1, "aluCycles must be >= 1");
    aluLatency_.fill(cfg_.aluCycles);
    for (const auto &[op, latency] : cfg_.opLatency) {
        SIM_ASSERT_MSG(latency >= 1, "opLatency[{}] must be >= 1",
                       graph::opcodeName(op));
        aluLatency_[static_cast<std::size_t>(op)] = latency;
    }

    observing_ = cfg_.latencyStats;
    if (cfg_.tracer && cfg_.tracer->active()) {
        observing_ = true;
        nameTraceTracks();
        net_->setTracer(cfg_.tracer, cfg_.numPEs);
    }
    metrics_ = cfg_.metrics;
    if (metrics_) {
        observing_ = true;
        initMetrics();
    }
    if (cfg_.profile) {
        observing_ = true;
        instrOffsets_ = program_.instrIndexOffsets();
        profile_.resize(program_.totalInstructions());
    }

    // Shard the PEs across host threads: contiguous, near-equal
    // ranges, so one shard's phase A walks its PEs in machine order.
    threads_ = cfg_.threads == 0 ? 1 : cfg_.threads;
    threads_ = std::min<std::uint32_t>(threads_, cfg_.numPEs);
    shards_.reserve(threads_);
    for (std::uint32_t s = 0; s < threads_; ++s) {
        shards_.emplace_back(program_, contexts_);
        shards_.back().first = s * cfg_.numPEs / threads_;
        shards_.back().last = (s + 1) * cfg_.numPEs / threads_;
    }
    shardIdx_.resize(cfg_.numPEs);
    for (std::uint32_t s = 0; s < threads_; ++s)
        for (std::uint32_t p = shards_[s].first; p < shards_[s].last;
             ++p)
            shardIdx_[p] = s;
    if (cfg_.profile)
        for (Shard &sh : shards_)
            sh.prof.resize(program_.totalInstructions());
    if (threads_ > 1) {
        pool_ = std::make_unique<sim::WorkerPool>(threads_);
        scanTask_ = [this](unsigned s) { scanShard(shards_[s]); };
        // observing_ is final by now; bind the matching phase-A
        // instantiation so workers never test the flag per token.
        if (observing_)
            cycleTask_ = [this](unsigned s) {
                shardCycle<true>(shards_[s]);
            };
        else
            cycleTask_ = [this](unsigned s) {
                shardCycle<false>(shards_[s]);
            };
    }
    const bool tracing = cfg_.tracer && cfg_.tracer->active();
    for (Shard &sh : shards_) {
        if (tracing) {
            // Pass-through when sequential (byte-identical traces),
            // buffered when workers emit off the committing thread.
            sh.trc.bind(cfg_.tracer, threads_ > 1);
            sh.trcp = &sh.trc;
        }
        if (cfg_.trace) {
            sh.dbg = threads_ > 1
                         ? static_cast<std::ostream *>(&sh.dbgBuf)
                         : cfg_.trace;
        }
    }
}

void
Machine::nameTraceTracks()
{
    sim::Tracer &t = *cfg_.tracer;
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        t.processName(p, sim::format("pe{}", p));
        t.threadName(p, kTidWm, "wait-match");
        t.threadName(p, kTidFetch, "fetch");
        t.threadName(p, kTidAlu, "alu");
        t.threadName(p, kTidOutput, "output");
        t.threadName(p, kTidIstr, "istructure");
    }
    t.processName(cfg_.numPEs, "network");
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p)
        t.threadName(cfg_.numPEs, p, sim::format("port{}", p));
}

Machine::~Machine() = default;

void
Machine::initMetrics()
{
    sim::MetricsRecorder &m = *metrics_;
    mIds_.peFired.reserve(cfg_.numPEs);
    mIds_.peAluBusy.reserve(cfg_.numPEs);
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        mIds_.peFired.push_back(m.rate(sim::format("pe{}.fired", p)));
        mIds_.peAluBusy.push_back(
            m.rate(sim::format("pe{}.aluBusyCycles", p)));
    }
    mIds_.wmEntries = m.gauge("wm.entries");
    mIds_.activeItems = m.gauge("pipeline.activeItems");
    mIds_.netQueued = m.gauge("net.queued");
    mIds_.netInFlight = m.gauge("net.inFlight");
    mIds_.isDeferred = m.gauge("is.deferredBacklog");
    if (faults_)
        mIds_.faultsDestroyed = m.rate("faults.destroyed");
    if (rel_) {
        mIds_.relRetransmits = m.rate("rel.retransmits");
        mIds_.relPending = m.gauge("rel.pending");
    }
    // Serving gauges are registered unconditionally (serve() may be
    // called on any machine): every series then has one value per
    // recorded row, and ragged rows can never reach the CSV writer.
    mIds_.srvInFlight = m.gauge("srv.inFlight");
    mIds_.srvAdmitQueue = m.gauge("srv.admitQueue");
    mIds_.srvWatermarkHits = m.gauge("srv.watermarkHits");
}

void
Machine::sampleMetrics()
{
    sim::MetricsRecorder &m = *metrics_;
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        const PeStats &st = pes_[p]->stats;
        m.set(mIds_.peFired[p],
              static_cast<double>(st.fired.value()));
        m.set(mIds_.peAluBusy[p],
              static_cast<double>(st.aluBusyCycles.value()));
    }
    m.set(mIds_.wmEntries, static_cast<double>(wmTotal()));
    std::uint64_t items = 0;
    for (const Shard &sh : shards_)
        items += sh.activeItems;
    m.set(mIds_.activeItems, static_cast<double>(items));
    const net::NetOccupancy occ = net_->occupancy();
    m.set(mIds_.netQueued, static_cast<double>(occ.queued));
    m.set(mIds_.netInFlight, static_cast<double>(occ.inFlight));
    // Deferred-read backlog from the cumulative controller counters:
    // O(numPEs), unlike walking the structure store's chunks.
    const mem::IStructureStats is = istructureTotals();
    m.set(mIds_.isDeferred,
          static_cast<double>(is.fetchesDeferred.value() -
                              is.deferredServed.value()));
    if (faults_)
        m.set(mIds_.faultsDestroyed,
              static_cast<double>(faults_->stats().destroyed()));
    if (rel_) {
        m.set(mIds_.relRetransmits,
              static_cast<double>(
                  rel_->relStats().retransmits.value()));
        m.set(mIds_.relPending,
              static_cast<double>(rel_->pendingCount()));
    }
    m.set(mIds_.srvInFlight,
          static_cast<double>(nextAdmit_ - reqCompleted_));
    std::uint64_t due = 0;
    for (std::size_t r = nextAdmit_; r < requests_.size(); ++r) {
        if (requests_[r].arrival > now_)
            break;
        ++due;
    }
    m.set(mIds_.srvAdmitQueue, static_cast<double>(due));
    m.set(mIds_.srvWatermarkHits,
          static_cast<double>(watermarkHits_));
    m.record(now_);
}

sim::NodeId
Machine::mapTag(const graph::Tag &tag) const
{
    switch (cfg_.mapping) {
      case MachineConfig::Mapping::HashTag:
        return static_cast<sim::NodeId>(graph::TagHash{}(tag) %
                                        cfg_.numPEs);
      case MachineConfig::Mapping::ByContext: {
        std::uint64_t z = tag.ctx + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        return static_cast<sim::NodeId>(z % cfg_.numPEs);
      }
      case MachineConfig::Mapping::ByIteration:
        return static_cast<sim::NodeId>(
            (static_cast<std::uint64_t>(tag.ctx) * 31 + tag.iter) %
            cfg_.numPEs);
      case MachineConfig::Mapping::SinglePe:
        return 0;
    }
    sim::panic("unknown mapping policy");
}

sim::NodeId
Machine::mapToken(const graph::Token &t) const
{
    switch (t.kind) {
      case graph::TokenKind::Normal:
        return mapTag(t.tag);
      case graph::TokenKind::IsFetch:
      case graph::TokenKind::IsStore:
        return static_cast<sim::NodeId>(t.addr % cfg_.numPEs);
      case graph::TokenKind::IsAlloc:
      case graph::TokenKind::IsAppend:
        // Serviced by any controller; keep it where the request's
        // reply will be needed to save a network trip.
        return mapTag(t.reply.tag);
      case graph::TokenKind::Output:
        return 0; // the host's PE controller
    }
    sim::panic("unknown token kind");
}

std::uint64_t
Machine::allocateGlobal(std::uint64_t n)
{
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(cfg_.isWordsPerPe) * cfg_.numPEs;
    SIM_ASSERT_MSG(allocPtr_ + n <= capacity,
                   "i-structure storage exhausted: {} + {} > {}",
                   allocPtr_, n, capacity);
    const std::uint64_t base = allocPtr_;
    allocPtr_ += n;
    return base;
}

void
Machine::route(Shard &sh, sim::NodeId src, graph::Token t)
{
    const sim::NodeId dst = mapToken(t);
    t.pe = dst;
    if (cfg_.localBypass && dst == src) {
        pes_[src]->stats.bypassTokens.inc();
        pushInQ(sh, *pes_[src], std::move(t));
    } else {
        net_->send(src, dst, std::move(t));
    }
}

void
Machine::input(std::uint16_t cb, std::uint16_t param, graph::Value v)
{
    const graph::CodeBlock &block = program_.codeBlock(cb);
    SIM_ASSERT_MSG(param < block.numParams,
                   "input param {} beyond the {} params of '{}'", param,
                   block.numParams, block.name);
    graph::Token t;
    t.kind = graph::TokenKind::Normal;
    t.tag = graph::Tag{graph::rootContext, cb, param, 1};
    t.port = 0;
    t.nt = block.at(param).nt;
    t.data = std::move(v);
    if (observing_)
        t.seq = tokenSeq_++;
    const sim::NodeId dst = mapToken(t);
    t.pe = dst;
    pushInQ(shardOf(dst), *pes_[dst], std::move(t));
}

std::uint32_t
Machine::submit(std::uint16_t cb, std::vector<graph::Value> args,
                sim::Cycle arrival)
{
    const graph::CodeBlock &block = program_.codeBlock(cb);
    SIM_ASSERT_MSG(args.size() == block.numParams,
                   "request for '{}' carries {} args; the block takes "
                   "{}", block.name, args.size(), block.numParams);
    SIM_ASSERT_MSG(requests_.empty() ||
                       arrival >= requests_.back().arrival,
                   "requests must be submitted in arrival order");
    const auto rid = static_cast<std::uint32_t>(requests_.size());
    requests_.push_back(
        ServeRequest{cb, std::move(args), arrival, false});
    return rid;
}

void
Machine::injectRequest(std::uint32_t rid)
{
    // Mirrors input(), except the initiation number carries the
    // request id: all of request r's root-context activity runs with
    // iter == r + 1, which is what completion detection and deadlock
    // attribution key on.
    ServeRequest &r = requests_[rid];
    const graph::CodeBlock &block = program_.codeBlock(r.cb);
    for (std::uint16_t param = 0; param < r.args.size(); ++param) {
        graph::Token t;
        t.kind = graph::TokenKind::Normal;
        t.tag = graph::Tag{graph::rootContext, r.cb, param, rid + 1};
        t.port = 0;
        t.nt = block.at(param).nt;
        t.data = std::move(r.args[param]);
        if (observing_)
            t.seq = tokenSeq_++;
        const sim::NodeId dst = mapToken(t);
        t.pe = dst;
        pushInQ(shardOf(dst), *pes_[dst], std::move(t));
    }
    r.args.clear();
}

void
Machine::updateAdmissionGate()
{
    if (cfg_.wmHighWatermark == 0)
        return; // admission control off: the gate never closes
    const std::uint64_t wm = wmTotal();
    if (!admitBlocked_) {
        if (wm >= cfg_.wmHighWatermark) {
            admitBlocked_ = true;
            ++watermarkHits_;
        }
    } else {
        const std::uint64_t low =
            cfg_.wmLowWatermark != 0 ? cfg_.wmLowWatermark
                                     : cfg_.wmHighWatermark / 2;
        if (wm <= low)
            admitBlocked_ = false;
    }
}

void
Machine::serveAdmit()
{
    updateAdmissionGate();
    while (nextAdmit_ < requests_.size() &&
           requests_[nextAdmit_].arrival <= now_)
    {
        if (admitBlocked_) {
            // A quiescent machine can never drain the waiting-matching
            // store any further, so a shut gate would hold its due
            // requests forever: force exactly one through (the next
            // iteration sees a non-quiescent machine and stops).
            if (!idle())
                break;
        }
        injectRequest(static_cast<std::uint32_t>(nextAdmit_++));
        updateAdmissionGate();
    }
}

bool
Machine::serveAdvance()
{
    if (nextAdmit_ >= requests_.size())
        return false;
    const sim::Cycle arrival = requests_[nextAdmit_].arrival;
    if (arrival > now_) {
        // Quiescent between arrivals: jump straight to the next one,
        // with the same batch accounting and fabric-clock resync as
        // skipAhead (nothing can retire before `arrival` — the
        // machine is idle — so one step() covers the gap).
        wmResidency_.sample(static_cast<double>(wmTotal()),
                            arrival - now_);
        net_->step(arrival - 1);
        now_ = arrival;
        SIM_ASSERT_MSG(now_ < cfg_.maxCycles,
                       "machine exceeded {} cycles; livelock?",
                       cfg_.maxCycles);
    }
    serveAdmit();
    return true;
}

void
Machine::noteRequestOutput(const graph::Tag &tag)
{
    // Serving outputs normally fire in the root context carrying the
    // request's initiation number directly; an OUTPUT inside a callee
    // context is attributed through the caller chain (0 = a released
    // context somewhere along it: unattributable, and ignored).
    const std::uint32_t iter = tag.ctx == graph::rootContext
                                   ? tag.iter
                                   : contexts_.rootIter(tag.ctx);
    if (iter == 0 || iter > requests_.size())
        return;
    ServeRequest &r = requests_[iter - 1];
    if (r.done)
        return;
    r.done = true;
    ++reqCompleted_;
    reqLatency_.sample(static_cast<double>(now_ - r.arrival));
}

std::vector<OutputRecord>
Machine::serve()
{
    SIM_ASSERT_MSG(!serving_, "serve() is not reentrant");
    serveUntil(sim::neverCycle);
    return outputs_;
}

bool
Machine::serveUntil(sim::Cycle stopAt)
{
    // No reentrancy assert: a machine restored from a mid-serve
    // snapshot resumes with serving_ already set.
    serving_ = true;
    const bool paused = runUntil(stopAt);
    if (!paused)
        serving_ = false;
    return paused;
}

graph::IPtr
Machine::preload(const std::vector<graph::Value> &values)
{
    const std::uint64_t base = allocateGlobal(values.size());
    std::vector<std::pair<graph::IsCont, graph::Value>> no_wake;
    for (std::size_t k = 0; k < values.size(); ++k) {
        const std::uint64_t addr = base + k;
        pes_[addr % cfg_.numPEs]->isStore.store(addr / cfg_.numPEs,
                                                values[k], no_wake);
    }
    SIM_ASSERT(no_wake.empty());
    return graph::IPtr{base, static_cast<std::uint32_t>(values.size())};
}

template <bool Obs>
void
Machine::stepInput(Shard &sh, Pe &pe, sim::NodeId id, bool defer)
{
    // The waiting-matching section accepts one token per cycle; a
    // multi-cycle match holds the stage busy.
    if (tickBusy(sh, pe.matchBusy, pe.stats.matchBusyCycles))
        return;
    if (pe.inQ.empty())
        return;
    graph::Token tok = std::move(pe.inQ.front());
    pe.inQ.pop_front();
    --sh.activeItems;
    pe.stats.tokensIn.inc();
    if (sh.dbg) {
        *sh.dbg << now_ << " pe" << tok.pe << " in    " << tok
                << "\n";
    }

    using graph::TokenKind;
    switch (tok.kind) {
      case TokenKind::Normal: {
        if (tok.nt == 1) {
            // Monadic tokens go straight to instruction fetch.
            if constexpr (Obs) {
                SIM_TRACE(sh.trcp, Fire, complete, id, kTidFetch,
                          "fetch", now_, cfg_.fetchCycles,
                          sim::format("\"tag\":\"{}\",\"seq\":{}",
                                      tok.tag, tok.seq));
            }
            std::vector<graph::Value> ops = takeSlots(sh, 1);
            ops[0] = std::move(tok.data);
            pe.fetchQ.push_back(ReadyOp{
                graph::EnabledInstruction{tok.tag, std::move(ops)},
                now_ + cfg_.fetchCycles, tok.born});
            ++sh.activeItems;
            break;
        }
        pe.stats.matchBusyCycles.inc();
        sim::Cycle busy = cfg_.matchCycles - 1;
        auto [wp, inserted] = pe.waitStore.insert(tok.tag);
        if (inserted) {
            ++sh.wmEntries;
            if (cfg_.matchCapacity != 0 &&
                pe.waitStore.size() > cfg_.matchCapacity)
            {
                // Associative store full: the entry spills to overflow
                // memory; the section stalls for the slow access.
                pe.stats.matchOverflows.inc();
                busy += cfg_.matchOverflowPenalty;
            }
        }
        setBusy(sh, pe.matchBusy, busy);
        Waiting &w = *wp;
        if (w.expected == 0) {
            SIM_ASSERT_MSG(tok.nt <= 64,
                           "instruction with {} input ports exceeds "
                           "the matching bitmask", tok.nt);
            w.expected = tok.nt;
            w.slots = takeSlots(sh, tok.nt);
            w.filled = 0;
        }
        SIM_ASSERT_MSG(tok.port < w.expected,
                       "token port {} out of range (nt {})", tok.port,
                       w.expected);
        if (w.filled >> tok.port & 1u) {
            // An already-filled slot is a graph bug on a reliable
            // fabric; under fault injection it is a duplicated packet
            // and the section discards it idempotently.
            SIM_ASSERT_MSG(faults_ != nullptr,
                           "duplicate token for activity {} port {}: "
                           "slot already filled (non-deterministic "
                           "graph?)", tok.tag, tok.port);
            pe.stats.dupTokensDropped.inc();
            if constexpr (Obs) {
                SIM_TRACE(sh.trcp, Wm, instant, id, kTidWm, "fdupdrop",
                          now_,
                          sim::format("\"tag\":\"{}\",\"port\":{}",
                                      tok.tag,
                                      static_cast<unsigned>(tok.port)));
            }
            break;
        }
        w.filled |= std::uint64_t{1} << tok.port;
        w.slots[tok.port] = std::move(tok.data);
        w.arrived += 1;
        pe.stats.waitStorePeak = std::max<std::uint64_t>(
            pe.stats.waitStorePeak, pe.waitStore.size());
        if (w.arrived == w.expected) {
            if constexpr (Obs) {
                SIM_TRACE(sh.trcp, Wm, complete, id, kTidWm, "match",
                          now_, busy + 1,
                          sim::format("\"tag\":\"{}\",\"seq\":{}",
                                      tok.tag, tok.seq));
                SIM_TRACE(sh.trcp, Fire, complete, id, kTidFetch,
                          "fetch", now_, cfg_.fetchCycles,
                          sim::format("\"tag\":\"{}\"", tok.tag));
            }
            // Move the operand set out, then release the entry; the
            // backward-shift erase may relocate other entries but
            // never touches the moved-from vector.
            std::vector<graph::Value> ops = std::move(w.slots);
            pe.waitStore.erase(tok.tag);
            --sh.wmEntries;
            pe.fetchQ.push_back(ReadyOp{
                graph::EnabledInstruction{tok.tag, std::move(ops)},
                now_ + cfg_.fetchCycles, tok.born});
            ++sh.activeItems;
        } else {
            if constexpr (Obs) {
                SIM_TRACE(
                    sh.trcp, Wm, instant, id, kTidWm, "enq", now_,
                    sim::format("\"tag\":\"{}\",\"port\":{},"
                                "\"arrived\":{},\"expected\":{}",
                                tok.tag,
                                static_cast<unsigned>(tok.port),
                                static_cast<unsigned>(w.arrived),
                                static_cast<unsigned>(w.expected)));
            }
        }
        break;
      }

      case TokenKind::IsFetch:
      case TokenKind::IsStore:
      case TokenKind::IsAlloc:
      case TokenKind::IsAppend:
        pe.isQ.push_back(std::move(tok));
        ++sh.activeItems;
        break;

      case TokenKind::Output:
        if (sh.dbg) {
            *sh.dbg << now_ << " OUTPUT " << tok.data << "\n";
        }
        if constexpr (Obs) {
            SIM_TRACE(sh.trcp, Sched, instant, id, kTidWm, "result",
                      now_,
                      sim::format("\"value\":\"{}\",\"seq\":{}",
                                  tok.data, tok.seq));
        }
        if (defer) {
            // The host list is shared; append at commit, in PE order.
            pe.stage.output =
                OutputRecord{tok.tag, std::move(tok.data)};
            pe.stage.hasOutput = true;
        } else {
            if (serving_)
                noteRequestOutput(tok.tag);
            outputs_.push_back(
                OutputRecord{tok.tag, std::move(tok.data)});
        }
        break;
    }
}

template <bool Obs>
void
Machine::emitNew(Shard &sh, Pe &pe, std::vector<graph::Token> *staged,
                 graph::Token &&t)
{
    if constexpr (Obs)
        t.born = stamp(now_);
    if (staged) {
        // Token::seq is a global creation sequence; the commit phase
        // stamps staged tokens in PE-index order.
        staged->push_back(std::move(t));
        return;
    }
    if constexpr (Obs)
        t.seq = tokenSeq_++;
    pe.outQ.push_back(std::move(t));
    ++sh.activeItems;
}

template <bool Obs>
void
Machine::stepAlu(Shard &sh, Pe &pe, sim::NodeId id, bool defer)
{
    if (tickBusy(sh, pe.aluBusy, pe.stats.aluBusyCycles))
        return;
    if (pe.fetchQ.empty() || pe.fetchQ.front().readyAt > now_)
        return;
    ReadyOp op = std::move(pe.fetchQ.front());
    pe.fetchQ.pop_front();
    --sh.activeItems;

    // Append the compile-time constant, if any, as the last operand.
    const graph::Instruction &in = program_.instruction(
        op.enabled.tag.codeBlock, op.enabled.tag.stmt);
    if (in.constant)
        op.enabled.operands.push_back(*in.constant);

    if (sh.dbg) {
        *sh.dbg << now_ << " fire  " << op.enabled.tag << " "
                << graph::opcodeName(in.op) << "\n";
    }
    const sim::Cycle lat = aluLatency_[static_cast<std::size_t>(in.op)];
    if constexpr (Obs) {
        if (!sh.prof.empty()) {
            const std::size_t g =
                instrOffsets_[op.enabled.tag.codeBlock] +
                op.enabled.tag.stmt;
            ++sh.prof.fires[g];
            sh.prof.cycles[g] += lat;
        }
        sh.birthToFire.sample(sinceStamp(now_, op.born));
        SIM_TRACE(sh.trcp, Fire, complete, id, kTidAlu,
                  graph::opcodeName(in.op), now_, lat,
                  sim::format("\"tag\":\"{}\",\"wait\":{}",
                              op.enabled.tag,
                              sinceStamp(now_, op.born)));
    }
    pe.stats.fired.inc();
    pe.stats.aluBusyCycles.inc();
    setBusy(sh, pe.aluBusy, lat - 1);

    if (defer && touchesContext(in.op)) {
        // Context interning/release is order-sensitive shared state;
        // run this fire in the commit phase (timing is already done —
        // only the token product moves).
        pe.stage.pendingFire = std::move(op);
        pe.stage.fireDeferred = true;
        return;
    }
    sh.fireBuf.clear();
    sh.exec.execute(op.enabled, sh.fireBuf);
    recycleSlots(sh, std::move(op.enabled.operands));
    for (auto &t : sh.fireBuf)
        emitNew<Obs>(sh, pe, defer ? &pe.stage.emitFire : nullptr,
                     std::move(t));
}

template <bool Obs>
void
Machine::serveDeferred(
    Shard &sh, Pe &pe, sim::NodeId id, graph::TokenKind cause,
    std::vector<std::pair<graph::IsCont, graph::Value>> &served,
    std::vector<graph::Token> *staged)
{
    using graph::TokenKind;
    for (auto &[cont, value] : served) {
        graph::Token t;
        if (cont.toCell) {
            // A copy target: forward the datum as a store to the new
            // structure's cell (routed to its controller).
            t.kind = TokenKind::IsStore;
            t.addr = cont.cellAddr;
            t.data = value;
        } else {
            t.kind = TokenKind::Normal;
            t.tag = cont.cont.tag;
            t.port = cont.cont.port;
            t.nt = cont.cont.nt;
            t.data = value;
            // Read-issue-to-response latency; a response emitted by a
            // STORE (or a copy's write) is a read that sat deferred.
            if constexpr (Obs) {
                sh.readLatency.sample(sinceStamp(now_, cont.born));
                if (cause != TokenKind::IsFetch) {
                    SIM_TRACE(
                        sh.trcp, Istr, instant, id, kTidIstr, "serve",
                        now_,
                        sim::format("\"reader\":\"{}\",\"lat\":{}",
                                    cont.cont.tag,
                                    sinceStamp(now_, cont.born)));
                }
            }
        }
        emitNew<Obs>(sh, pe, staged, std::move(t));
    }
}

template <bool Obs>
void
Machine::applyAllocAppend(Shard &sh, Pe &pe, sim::NodeId id,
                          graph::Token tok)
{
    std::vector<std::pair<graph::IsCont, graph::Value>> served;
    using graph::TokenKind;
    if (tok.kind == TokenKind::IsAlloc) {
        const auto n = static_cast<std::uint64_t>(tok.data.asInt());
        const std::uint64_t base = allocateGlobal(n);
        if constexpr (Obs) {
            SIM_TRACE(sh.trcp, Istr, complete, id, kTidIstr, "alloc",
                      now_, cfg_.isReadCycles,
                      sim::format("\"base\":{},\"words\":{}", base,
                                  n));
        }
        graph::Token reply;
        reply.kind = TokenKind::Normal;
        reply.tag = tok.reply.tag;
        reply.port = tok.reply.port;
        reply.nt = tok.reply.nt;
        reply.data = graph::Value{
            graph::IPtr{base, static_cast<std::uint32_t>(n)}};
        emitNew<Obs>(sh, pe, nullptr, std::move(reply));
    } else {
        // Functional update: allocate and copy. The copy touches
        // cells on every PE; it is modelled as a block operation of
        // this controller charged read+write time per element (the
        // real machine would stream per-cell requests). A source cell
        // not yet written is copied non-strictly: a deferred read is
        // parked on it whose continuation stores into the new cell
        // when the producer's write lands.
        const auto len = static_cast<std::uint32_t>(tok.aux >> 32);
        const std::uint64_t idx = tok.aux & 0xffffffffu;
        const sim::Cycle appendCost =
            len > 0 ? static_cast<sim::Cycle>(len) *
                          (cfg_.isReadCycles + cfg_.isWriteCycles)
                    : cfg_.isReadCycles;
        const std::uint64_t base = allocateGlobal(len);
        if constexpr (Obs) {
            SIM_TRACE(sh.trcp, Istr, complete, id, kTidIstr, "append",
                      now_, appendCost,
                      sim::format("\"src\":{},\"dst\":{},\"len\":{}",
                                  tok.addr, base, len));
        }
        for (std::uint32_t k = 0; k < len; ++k) {
            const std::uint64_t dst = base + k;
            if (k == idx) {
                pes_[dst % cfg_.numPEs]->isStore.store(
                    dst / cfg_.numPEs, tok.data, served);
                continue;
            }
            const std::uint64_t src = tok.addr + k;
            // The parked continuation lives on the *source* cell's
            // controller; its wake-up is emitted from that PE.
            std::vector<std::pair<graph::IsCont, graph::Value>> now;
            pes_[src % cfg_.numPEs]->isStore.fetch(
                src / cfg_.numPEs,
                graph::IsCont{.toCell = true, .cellAddr = dst}, now);
            for (auto &[cont, value] : now) {
                pes_[dst % cfg_.numPEs]->isStore.store(
                    dst / cfg_.numPEs, value, served);
            }
        }
        graph::Token reply;
        reply.kind = TokenKind::Normal;
        reply.tag = tok.reply.tag;
        reply.port = tok.reply.port;
        reply.nt = tok.reply.nt;
        reply.data = graph::Value{graph::IPtr{base, len}};
        emitNew<Obs>(sh, pe, nullptr, std::move(reply));
    }
    serveDeferred<Obs>(sh, pe, id, tok.kind, served, nullptr);
}

template <bool Obs>
void
Machine::stepIs(Shard &sh, Pe &pe, sim::NodeId id, bool defer)
{
    if (tickBusy(sh, pe.isBusy, pe.stats.isBusyCycles))
        return;
    if (pe.isQ.empty())
        return;
    graph::Token tok = std::move(pe.isQ.front());
    pe.isQ.pop_front();
    --sh.activeItems;
    pe.stats.isBusyCycles.inc();

    std::vector<std::pair<graph::IsCont, graph::Value>> served;
    using graph::TokenKind;
    switch (tok.kind) {
      case TokenKind::IsFetch: {
        SIM_ASSERT_MSG(tok.addr % cfg_.numPEs == id,
                       "i-structure fetch for word {} misrouted to PE "
                       "{}", tok.addr, id);
        setBusy(sh, pe.isBusy, cfg_.isReadCycles - 1);
        if constexpr (Obs) {
            SIM_TRACE(sh.trcp, Istr, complete, id, kTidIstr, "read",
                      now_, cfg_.isReadCycles,
                      sim::format("\"addr\":{}", tok.addr));
        }
        // Without lifecycle stamping the token's born field is 0; use
        // the controller arrival cycle so the deadlock report still
        // dates parked reads.
        if (!pe.isStore.fetch(tok.addr / cfg_.numPEs,
                              graph::IsCont{.born = Obs
                                                ? tok.born
                                                : stamp(now_),
                                            .cont = tok.reply},
                              served))
        {
            if constexpr (Obs) {
                SIM_TRACE(sh.trcp, Istr, instant, id, kTidIstr,
                          "defer", now_,
                          sim::format("\"addr\":{},\"reader\":\"{}\"",
                                      tok.addr, tok.reply.tag));
            }
        }
        break;
      }
      case TokenKind::IsStore: {
        SIM_ASSERT_MSG(tok.addr % cfg_.numPEs == id,
                       "i-structure store for word {} misrouted to PE "
                       "{}", tok.addr, id);
        setBusy(sh, pe.isBusy, cfg_.isWriteCycles - 1);
        if constexpr (Obs) {
            SIM_TRACE(sh.trcp, Istr, complete, id, kTidIstr, "write",
                      now_, cfg_.isWriteCycles,
                      sim::format("\"addr\":{}", tok.addr));
        }
        if (!pe.isStore.store(tok.addr / cfg_.numPEs, tok.data,
                              served))
        {
            // Single-assignment violation — unless fault injection is
            // duplicating packets and this is a replayed STORE of the
            // value already present, which is absorbed idempotently.
            if (faults_ &&
                pe.isStore.peek(tok.addr / cfg_.numPEs) == tok.data)
            {
                pe.stats.dupStoresSuppressed.inc();
                if constexpr (Obs) {
                    SIM_TRACE(sh.trcp, Istr, instant, id, kTidIstr,
                              "fdupstore", now_,
                              sim::format("\"addr\":{}", tok.addr));
                }
            } else {
                sim::warn(
                    "machine: multiple write to i-structure cell {}",
                    tok.addr);
            }
        }
        break;
      }
      case TokenKind::IsAlloc: {
        setBusy(sh, pe.isBusy, cfg_.isReadCycles - 1);
        if (defer) {
            // Global allocation is a shared bump pointer; apply the
            // effects at commit (timing is already charged).
            pe.stage.pendingIs = std::move(tok);
            pe.stage.isDeferred = true;
            return;
        }
        applyAllocAppend<Obs>(sh, pe, id, std::move(tok));
        return;
      }
      case TokenKind::IsAppend: {
        SIM_ASSERT_MSG(!defer,
                       "APPEND reached a phase-A I-structure step; "
                       "the serial-IS fallback should have fired");
        SIM_ASSERT(sh.pendingAppends > 0);
        --sh.pendingAppends;
        const auto len = static_cast<std::uint32_t>(tok.aux >> 32);
        const sim::Cycle appendCost =
            len > 0 ? static_cast<sim::Cycle>(len) *
                          (cfg_.isReadCycles + cfg_.isWriteCycles)
                    : cfg_.isReadCycles;
        setBusy(sh, pe.isBusy, appendCost - 1);
        applyAllocAppend<Obs>(sh, pe, id, std::move(tok));
        return;
      }
      default:
        sim::panic("non-structure token in i-structure queue");
    }

    serveDeferred<Obs>(sh, pe, id, tok.kind, served,
                       defer ? &pe.stage.emitIs : nullptr);
}

template <bool Obs>
void
Machine::stepOutput(Shard &sh, Pe &pe, sim::NodeId id, bool defer)
{
    if (!defer) {
        for (std::uint32_t k = 0;
             k < cfg_.outputBandwidth && !pe.outQ.empty(); ++k)
        {
            graph::Token t = std::move(pe.outQ.front());
            pe.outQ.pop_front();
            --sh.activeItems;
            pe.stats.outputTokens.inc();
            if constexpr (Obs) {
                SIM_TRACE(sh.trcp, Sched, instant, id, kTidOutput,
                          "out", now_,
                          sim::format("\"seq\":{}", t.seq));
            }
            route(sh, id, std::move(t));
        }
        return;
    }

    // Phase A: decide the pop order (carried-over outQ tokens first,
    // then this cycle's fires, then structure responses — exactly the
    // order the sequential engine sees in outQ) and precompute each
    // token's destination. Routing happens at commit so network
    // injection order is PE-index order.
    Staging &st = pe.stage;
    for (std::uint32_t k = 0; k < cfg_.outputBandwidth; ++k) {
        graph::Token t;
        bool fresh;
        if (!pe.outQ.empty()) {
            t = std::move(pe.outQ.front());
            pe.outQ.pop_front();
            --sh.activeItems;
            fresh = false;
        } else if (st.fireUsed < st.emitFire.size()) {
            t = std::move(st.emitFire[st.fireUsed++]);
            fresh = true;
        } else if (st.isUsed < st.emitIs.size()) {
            t = std::move(st.emitIs[st.isUsed++]);
            fresh = true;
        } else {
            break;
        }
        pe.stats.outputTokens.inc();
        t.pe = mapToken(t);
        st.outPlan.push_back(std::move(t));
        st.outFresh.push_back(fresh ? 1 : 0);
    }
}

bool
Machine::idle() const
{
    // Occupancy is maintained incrementally, per shard, at every queue
    // push/pop and busy-countdown transition; going idle is a sum over
    // a handful of shards instead of an O(numPEs) sweep.
    std::uint64_t items = 0;
    std::uint32_t busy = 0;
    for (const Shard &sh : shards_) {
        items += sh.activeItems;
        busy += sh.busyStages;
    }
    return items == 0 && busy == 0 && net_->idle();
}

std::uint64_t
Machine::wmTotal() const
{
    std::uint64_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.wmEntries;
    return n;
}

std::uint64_t
Machine::pendingAppendsTotal() const
{
    std::uint64_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.pendingAppends;
    return n;
}

void
Machine::scanShard(Shard &sh)
{
    // Earliest cycle at which any owned pipeline stage can act. A
    // stage draining a busy countdown next acts when the countdown
    // expires; a non-empty queue behind an idle stage acts now; the
    // fetch pipeline also waits for the head's readyAt.
    //
    // Under a PE-stall window, candidates that would *start* work
    // (i.e. the stage has queued input) are pushed past the window's
    // end — but pure busy-countdown expiries are not: a stalled PE's
    // in-flight work keeps draining, and deferring those wakeups
    // would move the machine's quiescence cycle relative to the
    // per-cycle engine.
    const bool stallable = faults_ && faults_->hasPeStalls();
    sim::Cycle next = sim::neverCycle;
    for (std::uint32_t p = sh.first; p < sh.last; ++p) {
        const Pe &pe = *pes_[p];
        sim::Cycle start = sim::neverCycle; //!< needs the PE unstalled
        sim::Cycle drain = sim::neverCycle; //!< busy expiry only
        if (pe.matchBusy > 0 || !pe.inQ.empty()) {
            if (!pe.inQ.empty())
                start = std::min(start, now_ + pe.matchBusy);
            else
                drain = std::min(drain, now_ + pe.matchBusy);
        }
        if (pe.aluBusy > 0 || !pe.fetchQ.empty()) {
            sim::Cycle c = now_ + pe.aluBusy;
            if (!pe.fetchQ.empty()) {
                c = std::max(c, pe.fetchQ.front().readyAt);
                start = std::min(start, c);
            } else {
                drain = std::min(drain, c);
            }
        }
        if (pe.isBusy > 0 || !pe.isQ.empty()) {
            if (!pe.isQ.empty())
                start = std::min(start, now_ + pe.isBusy);
            else
                drain = std::min(drain, now_ + pe.isBusy);
        }
        if (!pe.outQ.empty())
            start = std::min(start, now_);
        if (stallable && start != sim::neverCycle)
            start = faults_->peResume(start, p);
        next = std::min(next, std::min(start, drain));
        if (next <= now_)
            break; // something is due this very cycle
    }
    sh.next = next;
}

void
Machine::skipAhead()
{
    Shard &sh = shards_.front();
    scanShard(sh);
    sim::Cycle next = std::min(sh.next, net_->nextDelivery());
    // Serving: never jump past the next admissible arrival (a shut
    // gate cannot reopen without machine progress, which the scan
    // already tracks, so blocked arrivals don't cap the jump).
    if (serving_ && !admitBlocked_ && nextAdmit_ < requests_.size())
        next = std::min(next, requests_[nextAdmit_].arrival);
    if (next <= now_)
        return;
    SIM_ASSERT_MSG(next != sim::neverCycle,
                   "skip-ahead with no pending event (idle() bug)");

    // Jump. Batch-account what the skipped cycles would have done one
    // by one: drain busy countdowns into their busy-cycle counters and
    // take one wm-residency sample per skipped cycle (the residency
    // cannot change while every matching section is stalled or empty).
    const sim::Cycle delta = next - now_;
    for (const auto &pe_ptr : pes_) {
        Pe &pe = *pe_ptr;
        batchBusy(sh, pe.matchBusy, pe.stats.matchBusyCycles, delta);
        batchBusy(sh, pe.aluBusy, pe.stats.aluBusyCycles, delta);
        batchBusy(sh, pe.isBusy, pe.stats.isBusyCycles, delta);
    }
    wmResidency_.sample(static_cast<double>(wmTotal()), delta);
    // Resynchronize the network's internal clock so tokens sent in the
    // first iteration after the jump get the correct issue stamp. By
    // the nextDelivery() contract nothing can retire before `next`, so
    // one step() call reproduces the skipped cycles' no-op steps.
    net_->step(next - 1);
    now_ = next;
    SIM_ASSERT_MSG(now_ < cfg_.maxCycles,
                   "machine exceeded {} cycles; livelock?",
                   cfg_.maxCycles);
}

void
Machine::skipParallel()
{
    // The per-shard scans run in parallel; the min-reduction over
    // shard results and the network query stay on the calling thread.
    pool_->run(scanTask_);
    sim::Cycle next = net_->nextDelivery();
    for (const Shard &sh : shards_)
        next = std::min(next, sh.next);
    // Same arrival clamp as skipAhead, for bit-identical serving.
    if (serving_ && !admitBlocked_ && nextAdmit_ < requests_.size())
        next = std::min(next, requests_[nextAdmit_].arrival);
    if (next <= now_)
        return;
    SIM_ASSERT_MSG(next != sim::neverCycle,
                   "skip-ahead with no pending event (idle() bug)");

    const sim::Cycle delta = next - now_;
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        Shard &sh = shardOf(p);
        Pe &pe = *pes_[p];
        batchBusy(sh, pe.matchBusy, pe.stats.matchBusyCycles, delta);
        batchBusy(sh, pe.aluBusy, pe.stats.aluBusyCycles, delta);
        batchBusy(sh, pe.isBusy, pe.stats.isBusyCycles, delta);
    }
    wmResidency_.sample(static_cast<double>(wmTotal()), delta);
    net_->step(next - 1);
    now_ = next;
    SIM_ASSERT_MSG(now_ < cfg_.maxCycles,
                   "machine exceeded {} cycles; livelock?",
                   cfg_.maxCycles);
}

template <bool Obs>
void
Machine::shardCycle(Shard &sh)
{
    const bool serialIs = serialIsCycle_;
    const bool peStalls = faults_ && faults_->hasPeStalls();
    for (std::uint32_t p = sh.first; p < sh.last; ++p) {
        Pe &pe = *pes_[p];
        Staging &st = pe.stage;
        st.emitFire.clear();
        st.emitIs.clear();
        st.fireUsed = 0;
        st.isUsed = 0;
        st.outPlan.clear();
        st.outFresh.clear();
        st.fireDeferred = false;
        st.isDeferred = false;
        st.hasOutput = false;

        if (peStalls && faults_->peStalled(now_, p)) {
            st.tailDeferred = false;
            tickStalled(sh, pe);
            continue;
        }
        stepInput<Obs>(sh, pe, p, true);
        stepAlu<Obs>(sh, pe, p, true);
        if (!serialIs)
            stepIs<Obs>(sh, pe, p, true);
        st.tailDeferred =
            serialIs || st.fireDeferred || st.isDeferred;
        if (!st.tailDeferred)
            stepOutput<Obs>(sh, pe, p, true);
    }
}

template <bool Obs>
void
Machine::commitFire(Shard &sh, Pe &pe)
{
    Staging &st = pe.stage;
    if (st.fireDeferred) {
        st.fireDeferred = false;
        ReadyOp op = std::move(st.pendingFire);
        sh.fireBuf.clear();
        sh.exec.execute(op.enabled, sh.fireBuf);
        recycleSlots(sh, std::move(op.enabled.operands));
        for (auto &t : sh.fireBuf)
            emitNew<Obs>(sh, pe, nullptr, std::move(t));
        return;
    }
    commitEmit<Obs>(sh, pe, st.emitFire, 0);
}

template <bool Obs>
void
Machine::commitEmit(Shard &sh, Pe &pe, std::vector<graph::Token> &vec,
                    std::size_t used)
{
    for (std::size_t i = used; i < vec.size(); ++i) {
        graph::Token &t = vec[i];
        if constexpr (Obs)
            t.seq = tokenSeq_++;
        pe.outQ.push_back(std::move(t));
        ++sh.activeItems;
    }
    vec.clear();
}

template <bool Obs>
void
Machine::commitStagedOutput(Shard &sh, Pe &pe, sim::NodeId id)
{
    Staging &st = pe.stage;
    if constexpr (Obs) {
        // Global sequence stamps in creation order: the consumed
        // prefix first (pop order equals creation order for fresh
        // tokens: outQ drains before emitFire, emitFire before
        // emitIs), then the leftovers.
        for (std::size_t i = 0; i < st.outPlan.size(); ++i)
            if (st.outFresh[i])
                st.outPlan[i].seq = tokenSeq_++;
        for (std::size_t i = st.fireUsed; i < st.emitFire.size(); ++i)
            st.emitFire[i].seq = tokenSeq_++;
        for (std::size_t i = st.isUsed; i < st.emitIs.size(); ++i)
            st.emitIs[i].seq = tokenSeq_++;
    }
    for (auto &t : st.outPlan) {
        if constexpr (Obs) {
            SIM_TRACE(sh.trcp, Sched, instant, id, kTidOutput, "out",
                      now_, sim::format("\"seq\":{}", t.seq));
        }
        const sim::NodeId dst = t.pe;
        if (cfg_.localBypass && dst == id) {
            pe.stats.bypassTokens.inc();
            pushInQ(sh, pe, std::move(t));
        } else {
            net_->send(id, dst, std::move(t));
        }
    }
    st.outPlan.clear();
    st.outFresh.clear();
    // Tokens the bandwidth-limited output section did not take stay
    // queued for later cycles.
    for (std::size_t i = st.fireUsed; i < st.emitFire.size(); ++i) {
        pe.outQ.push_back(std::move(st.emitFire[i]));
        ++sh.activeItems;
    }
    st.emitFire.clear();
    for (std::size_t i = st.isUsed; i < st.emitIs.size(); ++i) {
        pe.outQ.push_back(std::move(st.emitIs[i]));
        ++sh.activeItems;
    }
    st.emitIs.clear();
}

template <bool Obs>
void
Machine::commitCycle()
{
    const bool peStalls = faults_ && faults_->hasPeStalls();
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        Shard &sh = shardOf(p);
        Pe &pe = *pes_[p];
        Staging &st = pe.stage;
        if (peStalls && faults_->peStalled(now_, p))
            continue; // phase A already ticked the stalled PE
        if (st.hasOutput) {
            st.hasOutput = false;
            if (serving_)
                noteRequestOutput(st.output.tag);
            outputs_.push_back(std::move(st.output));
        }
        if (serialIsCycle_) {
            // An APPEND may touch every controller: replay the whole
            // I-structure step (and the tail) serially this cycle.
            commitFire<Obs>(sh, pe);
            stepIs<Obs>(sh, pe, p, false);
            stepOutput<Obs>(sh, pe, p, false);
        } else if (st.tailDeferred) {
            commitFire<Obs>(sh, pe);
            if (st.isDeferred) {
                st.isDeferred = false;
                applyAllocAppend<Obs>(sh, pe, p,
                                      std::move(st.pendingIs));
            } else {
                commitEmit<Obs>(sh, pe, st.emitIs, 0);
            }
            stepOutput<Obs>(sh, pe, p, false);
        } else {
            commitStagedOutput<Obs>(sh, pe, p);
        }
    }
}

void
Machine::flushShardLogs()
{
    for (Shard &sh : shards_) {
        if (sh.trcp)
            sh.trc.flush();
        if (cfg_.trace && sh.dbg == &sh.dbgBuf) {
            *cfg_.trace << sh.dbgBuf.str();
            sh.dbgBuf.str(std::string());
        }
    }
}

template <bool Obs>
void
Machine::runSequential()
{
    Shard &sh = shards_.front();
    const bool peStalls = faults_ && faults_->hasPeStalls();
    for (;;) {
        // Pause point: checked at the serial top of the tick, before
        // any admission or stage work, so a paused machine holds no
        // mid-tick state. A skip/arrival jump may land past stopAt_;
        // the landing cycle is a pure function of (program, config,
        // stopAt), so the pause is deterministic at any thread count.
        if (now_ >= stopAt_) {
            paused_ = true;
            break;
        }
        // Serving: admit due requests at the serial point of the tick.
        if (serving_)
            serveAdmit();
        if (idle()) {
            // Quiescent — done, unless the server still holds queued
            // requests: jump to the next arrival and carry on.
            if (!serving_ || !serveAdvance())
                break;
            if (idle())
                continue;
        }
        // Jump over cycles in which nothing can happen. The jump may
        // drain the last busy countdowns and reach quiescence exactly
        // where the naive per-cycle loop would have stopped.
        skipAhead();
        // A skip clamped to an arrival lands exactly on it: admit
        // before stepping that cycle.
        if (serving_)
            serveAdmit();
        if (idle()) {
            if (!serving_ || !serveAdvance())
                break;
            if (idle())
                continue;
        }
        for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
            Pe &pe = *pes_[p];
            if (peStalls && faults_->peStalled(now_, p)) {
                tickStalled(sh, pe);
                continue;
            }
            stepInput<Obs>(sh, pe, p, false);
            stepAlu<Obs>(sh, pe, p, false);
            stepIs<Obs>(sh, pe, p, false);
            stepOutput<Obs>(sh, pe, p, false);
        }
        net_->step(now_);
        ++now_;
        for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
            if (auto tok = net_->receive(p))
                pushInQ(sh, *pes_[p], std::move(*tok));
        }
        wmResidency_.sample(static_cast<double>(wmTotal()));
        if constexpr (Obs) {
            if (metrics_ && metrics_->due(now_))
                sampleMetrics();
        }
        SIM_ASSERT_MSG(now_ < cfg_.maxCycles,
                       "machine exceeded {} cycles; livelock?",
                       cfg_.maxCycles);
    }
}

template <bool Obs>
void
Machine::runParallel()
{
    for (;;) {
        // Same pause point as the sequential engine (serial top of
        // the tick, phase B fully committed), so pausing never
        // perturbs the two-phase determinism argument.
        if (now_ >= stopAt_) {
            paused_ = true;
            break;
        }
        // Identical serving structure to the sequential engine: both
        // admission and the idle-time arrival jump run on the calling
        // thread, at the same logical points, for any thread count.
        if (serving_)
            serveAdmit();
        if (idle()) {
            if (!serving_ || !serveAdvance())
                break;
            if (idle())
                continue;
        }
        skipParallel();
        if (serving_)
            serveAdmit();
        if (idle()) {
            if (!serving_ || !serveAdvance())
                break;
            if (idle())
                continue;
        }
        // The serial-IS fallback: while any APPEND is in flight in an
        // input or structure queue, this cycle's I-structure steps
        // (whose copy loops touch other PEs' stores) run in phase B.
        serialIsCycle_ = pendingAppendsTotal() > 0;
        pool_->run(cycleTask_);  // phase A
        flushShardLogs();        // phase-A events, in shard order
        commitCycle<Obs>();      // phase B, in PE-index order
        flushShardLogs();        // commit-phase events
        net_->step(now_);
        ++now_;
        for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
            if (auto tok = net_->receive(p))
                pushInQ(shardOf(p), *pes_[p], std::move(*tok));
        }
        wmResidency_.sample(static_cast<double>(wmTotal()));
        // Identical serial sample point to the sequential engine
        // (after phase-B commit and network receive), so the rows are
        // bit-identical for any thread count.
        if constexpr (Obs) {
            if (metrics_ && metrics_->due(now_))
                sampleMetrics();
        }
        SIM_ASSERT_MSG(now_ < cfg_.maxCycles,
                       "machine exceeded {} cycles; livelock?",
                       cfg_.maxCycles);
    }
}

bool
Machine::runUntil(sim::Cycle stopAt)
{
    stopAt_ = stopAt;
    paused_ = false;
    // Select the observability instantiation once: the Obs=false
    // bodies contain no stamping, sampling, or trace code at all.
    if (threads_ > 1)
        observing_ ? runParallel<true>() : runParallel<false>();
    else
        observing_ ? runSequential<true>() : runSequential<false>();
    stopAt_ = sim::neverCycle;

    // Merge the shard-local latency histograms into the machine-level
    // ones, in shard order, then reset the shard copies so a resumed
    // run merges each sample exactly once. Exact: the samples are
    // integer-valued, so per-shard partial sums (and re-merging after
    // every pause) match sequential accumulation bit for bit.
    for (Shard &sh : shards_) {
        birthToFire_.merge(sh.birthToFire);
        readLatency_.merge(sh.readLatency);
        sh.birthToFire.reset();
        sh.readLatency.reset();
    }
    if (cfg_.profile)
        for (Shard &sh : shards_) {
            profile_.merge(sh.prof);
            if (!sh.prof.empty())
                sh.prof.resize(program_.totalInstructions());
        }
    if (paused_)
        return true;
    if (metrics_)
        metrics_->finalize(now_);

    // Quiescent. Unmatched partners or parked reads mean deadlock.
    deadlocked_ = outstandingReads() > 0;
    for (const auto &pe : pes_)
        if (!pe->waitStore.empty())
            deadlocked_ = true;
    return false;
}

std::vector<OutputRecord>
Machine::run()
{
    runUntil(sim::neverCycle);
    return outputs_;
}

void
Machine::reset()
{
    // Run state only. Everything resolved at construction — wiring,
    // shard layout, the ALU latency table, metrics series, the worker
    // pool — survives, as do all the warmed allocations (hash-table
    // capacity, ring buffers, structure chunks, the operand-slot
    // pool): that reuse is the point of resetting over reconstructing.
    for (auto &pe_ptr : pes_) {
        Pe &pe = *pe_ptr;
        pe.inQ.clear();
        pe.waitStore.clear();
        pe.matchBusy = 0;
        pe.fetchQ.clear();
        pe.aluBusy = 0;
        pe.outQ.clear();
        pe.isQ.clear();
        pe.isBusy = 0;
        pe.isStore.reset();
        pe.stats = PeStats{};
        Staging &st = pe.stage;
        st.emitFire.clear();
        st.emitIs.clear();
        st.fireUsed = 0;
        st.isUsed = 0;
        st.outPlan.clear();
        st.outFresh.clear();
        st.fireDeferred = false;
        st.isDeferred = false;
        st.tailDeferred = false;
        st.hasOutput = false;
    }
    for (Shard &sh : shards_) {
        sh.exec.resetFired();
        sh.activeItems = 0;
        sh.busyStages = 0;
        sh.wmEntries = 0;
        sh.pendingAppends = 0;
        sh.next = 0;
        sh.birthToFire.reset();
        sh.readLatency.reset();
        if (!sh.prof.empty())
            sh.prof.resize(program_.totalInstructions());
        sh.fireBuf.clear();
        sh.dbgBuf.str(std::string());
    }
    contexts_.reset();
    if (faults_)
        faults_->reset();
    net_->reset();
    outputs_.clear();
    allocPtr_ = 0;
    now_ = 0;
    deadlocked_ = false;
    wmResidency_.reset();
    birthToFire_.reset();
    readLatency_.reset();
    tokenSeq_ = 0;
    if (!profile_.empty())
        profile_.resize(program_.totalInstructions());
    serialIsCycle_ = false;
    requests_.clear();
    nextAdmit_ = 0;
    reqCompleted_ = 0;
    watermarkHits_ = 0;
    admitBlocked_ = false;
    serving_ = false;
    reqLatency_.reset();
    stopAt_ = sim::neverCycle;
    paused_ = false;
}

void
Machine::setFaultPlan(const sim::fault::FaultPlan &plan)
{
    cfg_.faults = plan;
    if (cfg_.faults.enabled()) {
        sim::fault::FaultPlan p = cfg_.faults;
        if (p.seed == 0)
            p.seed = deriveFaultSeed(cfg_.seed);
        faults_ = std::make_unique<sim::fault::FaultInjector>(p);
    } else {
        faults_.reset();
    }
    net_->setFaultInjector(faults_.get());
}

std::string
Machine::deadlockReport() const
{
    // Per-section caps keep a pathological run's report readable.
    constexpr std::size_t kMaxPerSection = 16;

    std::size_t stranded = 0;
    for (const auto &pe : pes_)
        stranded += pe->waitStore.size();

    std::ostringstream os;
    os << "deadlock report: " << outstandingReads()
       << " parked reads, " << stranded
       << " stranded activities\n";

    // 0. When fault injection was active, say whether the quiescence
    // can be blamed on destroyed traffic at all: a run that lost no
    // packets deadlocked on its own merits.
    if (faults_) {
        const auto &fs = faults_->stats();
        const std::uint64_t abandoned =
            rel_ ? rel_->relStats().abandoned.value() : 0;
        if (fs.destroyed() > 0 || abandoned > 0) {
            os << "  classification: stranded by loss — "
               << fs.destroyed()
               << " packet(s) destroyed by fault injection";
            if (rel_) {
                os << ", " << abandoned
                   << " send(s) abandoned after "
                   << cfg_.retry.maxAttempts << " attempts";
            }
            os << "\n";
        } else {
            os << "  classification: true deadlock — no packets were "
                  "lost\n";
        }
    }

    // 0b. Serving runs: attribute stranded activities to the requests
    // that spawned them (root-context tags carry the request's
    // initiation number directly; nested contexts resolve through the
    // caller chain), so a brownout report names the lost requests.
    if (!requests_.empty()) {
        std::map<std::uint32_t, std::size_t> byRequest;
        std::size_t unattributed = 0;
        for (const auto &pe : pes_) {
            pe->waitStore.forEach(
                [&](const graph::Tag &tag, const Waiting &) {
                    const std::uint32_t iter =
                        tag.ctx == graph::rootContext
                            ? tag.iter
                            : contexts_.rootIter(tag.ctx);
                    if (iter == 0 || iter > requests_.size())
                        ++unattributed;
                    else
                        byRequest[iter - 1] += 1;
                });
        }
        os << "  serving: " << nextAdmit_ << "/" << requests_.size()
           << " requests injected, " << reqCompleted_
           << " completed\n";
        if (!byRequest.empty() || unattributed > 0) {
            os << "  stranded activities by request:";
            std::size_t shown = 0;
            for (const auto &[rid, n] : byRequest) {
                if (++shown > kMaxPerSection) {
                    os << " ... "
                       << byRequest.size() - kMaxPerSection
                       << " more request(s)";
                    break;
                }
                os << " r" << rid << ":" << n;
            }
            if (unattributed > 0)
                os << " (+" << unattributed << " unattributed)";
            os << "\n";
        }
    }

    // 1. I-structure cells that were never written, and who waits.
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        const auto &store = pes_[p]->isStore;
        for (auto local : store.deferredAddresses(kMaxPerSection)) {
            const auto &readers = store.deferredList(local);
            os << "  i-structure cell " << local * cfg_.numPEs + p
               << " (PE " << p << ", local " << local
               << ") was never written; " << readers.size()
               << " parked reader(s):\n";
            std::size_t shown = 0;
            for (const auto &cont : readers) {
                if (++shown > kMaxPerSection) {
                    os << "    ... " << readers.size() - kMaxPerSection
                       << " more\n";
                    break;
                }
                if (cont.toCell) {
                    os << "    copy into cell " << cont.cellAddr
                       << " (APPEND in progress)\n";
                } else {
                    os << "    reader " << cont.cont.tag << " port "
                       << static_cast<unsigned>(cont.cont.port)
                       << " (read issued cycle " << cont.born << ")\n";
                }
            }
        }
    }

    // 2. Waiting-matching entries still holding partial operand sets.
    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        const auto &ws = pes_[p]->waitStore;
        if (ws.empty())
            continue;
        os << "  PE " << p << ": " << ws.size()
           << " activities still waiting for partner tokens:\n";
        std::size_t shown = 0;
        ws.forEach([&](const graph::Tag &tag, const Waiting &w) {
            if (++shown > kMaxPerSection) {
                if (shown == kMaxPerSection + 1)
                    os << "    ... " << ws.size() - kMaxPerSection
                       << " more\n";
                return;
            }
            os << "    " << tag << ": "
               << static_cast<unsigned>(w.arrived) << "/"
               << static_cast<unsigned>(w.expected)
               << " ports filled (mask 0x" << std::hex << w.filled
               << std::dec << "), missing port(s)";
            for (std::uint8_t port = 0; port < w.expected; ++port) {
                if (!(w.filled >> port & 1u))
                    os << " " << static_cast<unsigned>(port);
            }
            os << "\n";
        });
    }

    // 3. Packets the network accepted but never delivered (should be
    // zero at quiescence; nonzero means the run stopped mid-flight).
    // Under fault injection the conservation identity is
    //   sent + duplicates = delivered + destroyed + stillInside,
    // and with the reliability wrapper each abandoned send is a
    // payload that left the books without being delivered.
    const auto &ns = net_->stats();
    std::uint64_t credits = ns.sent.value();
    std::uint64_t debits = ns.delivered.value();
    if (rel_) {
        debits += rel_->relStats().abandoned.value();
    } else if (faults_) {
        const auto &fs = faults_->stats();
        credits += fs.duplicates;
        debits += fs.destroyed();
    }
    if (credits != debits) {
        os << "  network: " << credits - debits
           << " packet(s) in flight (" << ns.sent.value() << " sent, "
           << ns.delivered.value() << " delivered";
        if (rel_) {
            os << ", "
               << rel_->relStats().abandoned.value() << " abandoned";
        } else if (faults_) {
            os << ", " << faults_->stats().duplicates
               << " duplicated, " << faults_->stats().destroyed()
               << " destroyed";
        }
        os << ")\n";
    }
    return os.str();
}

std::size_t
Machine::outstandingReads() const
{
    std::size_t n = 0;
    for (const auto &pe : pes_)
        n += pe->isStore.outstandingReads();
    return n;
}

std::uint64_t
Machine::totalFired() const
{
    std::uint64_t n = 0;
    for (const auto &pe : pes_)
        n += pe->stats.fired.value();
    return n;
}

double
Machine::aluUtilization() const
{
    if (now_ == 0)
        return 0.0;
    std::uint64_t busy = 0;
    for (const auto &pe : pes_)
        busy += pe->stats.aluBusyCycles.value();
    return static_cast<double>(busy) /
           (static_cast<double>(now_) * cfg_.numPEs);
}

double
Machine::opsPerCycle() const
{
    return now_ ? static_cast<double>(totalFired()) / now_ : 0.0;
}

const PeStats &
Machine::peStats(std::uint32_t pe) const
{
    SIM_ASSERT(pe < pes_.size());
    return pes_[pe]->stats;
}

const net::NetStats &
Machine::netStats() const
{
    return net_->stats();
}

std::vector<sim::StatGroup>
Machine::statGroups() const
{
    std::vector<sim::StatGroup> groups;
    // Replay header: everything needed to reproduce this run.
    sim::StatGroup meta("meta");
    meta.set("seed", static_cast<double>(cfg_.seed));
    if (faults_)
        meta.set("faultSeed",
                 static_cast<double>(faults_->plan().seed));
    meta.set("reliable", rel_ ? 1.0 : 0.0);
    groups.push_back(std::move(meta));

    sim::StatGroup machine("machine");
    machine.set("cycles", static_cast<double>(now_));
    machine.set("activities", static_cast<double>(totalFired()));
    machine.set("opsPerCycle", opsPerCycle());
    machine.set("aluUtilization", aluUtilization());
    machine.set("contextsCreated",
                static_cast<double>(contexts_.totalCreated()));
    machine.set("netPacketsSent",
                static_cast<double>(net_->stats().sent.value()));
    machine.set("netMeanLatency", net_->stats().latency.mean());
    const auto is = istructureTotals();
    machine.set("isFetches", static_cast<double>(is.fetches.value()));
    machine.set("isFetchesDeferred",
                static_cast<double>(is.fetchesDeferred.value()));
    machine.set("isStores", static_cast<double>(is.stores.value()));
    groups.push_back(std::move(machine));

    if (faults_ || rel_) {
        sim::StatGroup f("faults");
        if (faults_) {
            const auto &fs = faults_->stats();
            f.set("decisions", static_cast<double>(fs.decisions));
            f.set("drops", static_cast<double>(fs.drops));
            f.set("duplicates", static_cast<double>(fs.duplicates));
            f.set("corrupts", static_cast<double>(fs.corrupts));
            f.set("delays", static_cast<double>(fs.delays));
            f.set("linkDownDrops",
                  static_cast<double>(fs.linkDownDrops));
            f.set("destroyed", static_cast<double>(fs.destroyed()));
            std::uint64_t dupTok = 0, dupStore = 0;
            for (const auto &pe : pes_) {
                dupTok += pe->stats.dupTokensDropped.value();
                dupStore += pe->stats.dupStoresSuppressed.value();
            }
            f.set("dupTokensDropped", static_cast<double>(dupTok));
            f.set("dupStoresSuppressed",
                  static_cast<double>(dupStore));
        }
        if (rel_) {
            const auto &rs = rel_->relStats();
            f.set("retransmits",
                  static_cast<double>(rs.retransmits.value()));
            f.set("abandoned",
                  static_cast<double>(rs.abandoned.value()));
            f.set("rxDuplicates",
                  static_cast<double>(rs.rxDuplicates.value()));
            f.set("acksSent",
                  static_cast<double>(rs.acksSent.value()));
            f.set("staleAcks",
                  static_cast<double>(rs.staleAcks.value()));
            f.set("envelopesSent",
                  static_cast<double>(
                      rel_->innerStats().sent.value()));
        }
        groups.push_back(std::move(f));
    }

    if (!requests_.empty()) {
        sim::StatGroup srv("serve");
        srv.set("submitted", static_cast<double>(requests_.size()));
        srv.set("injected", static_cast<double>(nextAdmit_));
        srv.set("completed", static_cast<double>(reqCompleted_));
        srv.set("watermarkHits",
                static_cast<double>(watermarkHits_));
        srv.set("latencyMean", reqLatency_.summary().mean());
        srv.set("latencyP50", reqLatency_.quantile(0.5));
        srv.set("latencyP99", reqLatency_.quantile(0.99));
        srv.set("latencyP999", reqLatency_.quantile(0.999));
        groups.push_back(std::move(srv));
    }

    for (std::uint32_t p = 0; p < cfg_.numPEs; ++p) {
        const PeStats &st = pes_[p]->stats;
        sim::StatGroup pe(sim::format("pe{}", p));
        pe.set("tokensIn", static_cast<double>(st.tokensIn.value()));
        pe.set("fired", static_cast<double>(st.fired.value()));
        pe.set("matchBusyCycles",
               static_cast<double>(st.matchBusyCycles.value()));
        pe.set("aluBusyCycles",
               static_cast<double>(st.aluBusyCycles.value()));
        pe.set("isBusyCycles",
               static_cast<double>(st.isBusyCycles.value()));
        pe.set("outputTokens",
               static_cast<double>(st.outputTokens.value()));
        pe.set("bypassTokens",
               static_cast<double>(st.bypassTokens.value()));
        pe.set("matchOverflows",
               static_cast<double>(st.matchOverflows.value()));
        pe.set("waitStorePeak", static_cast<double>(st.waitStorePeak));
        groups.push_back(std::move(pe));
    }
    return groups;
}

void
Machine::dumpStats(std::ostream &os) const
{
    for (const auto &group : statGroups())
        group.dump(os);
}

void
Machine::dumpStatsJson(std::ostream &os) const
{
    os << '{';
    for (const auto &group : statGroups()) {
        os << '"' << group.name() << "\":";
        group.dumpJson(os);
        os << ',';
    }
    os << "\"histograms\":{\"wmResidency\":";
    wmResidency_.dumpJson(os);
    os << ",\"birthToFire\":";
    birthToFire_.dumpJson(os);
    os << ",\"readLatency\":";
    readLatency_.dumpJson(os);
    os << "}}\n";
}

mem::IStructureStats
Machine::istructureTotals() const
{
    mem::IStructureStats total;
    for (const auto &pe : pes_) {
        const auto &s = pe->isStore.stats();
        total.fetches.inc(s.fetches.value());
        total.fetchesDeferred.inc(s.fetchesDeferred.value());
        total.stores.inc(s.stores.value());
        total.deferredServed.inc(s.deferredServed.value());
        total.multipleWrites.inc(s.multipleWrites.value());
    }
    return total;
}

} // namespace ttda

/**
 * @file
 * Machine checkpoint/restore: serialize the complete run state of a
 * quiescent or paused Machine into the versioned snapshot envelope
 * (common/snapshot.hh), and restore it onto a freshly-reset machine
 * built from the same program and configuration.
 *
 * What is serialized is exactly the state reset() clears — pipeline
 * queues, waiting-matching stores, structure storage, contexts, the
 * network (ReliableNet protocol state included), fault-injector RNG,
 * statistics, histograms and the serving queue. Everything resolved
 * at construction (wiring, shard layout, latency tables, routing
 * tables) is configuration and is re-derived by the restoring
 * machine, which is why a snapshot taken at --threads 4 restores
 * bit-identically at --threads 1: the shard-local accumulators are
 * recomputed for the restoring machine's own layout, and every
 * serialized quantity is thread-count-invariant by the determinism
 * argument in docs/ARCHITECTURE.md.
 */

#include "ttda/machine.hh"

#include <array>
#include <cstdint>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "graph/snapcodec.hh"
#include "net/crossbar.hh"
#include "net/hierarchical.hh"
#include "net/hypercube.hh"
#include "net/ideal.hh"
#include "net/omega.hh"

namespace ttda
{

namespace
{

using sim::snapshot::Error;
using sim::snapshot::Reader;
using sim::snapshot::Writer;

/** Static dispatch over the configured topology: the network classes
 *  expose non-virtual templated saveState/loadState (a virtual would
 *  force payload codecs into every instantiation), and the machine
 *  knows the concrete type from cfg_.topology. */
template <typename P>
void
saveTopology(Writer &w, const net::Network<P> &n,
             MachineConfig::Topology t)
{
    using T = MachineConfig::Topology;
    switch (t) {
      case T::Ideal:
        static_cast<const net::IdealNetwork<P> &>(n).saveState(w);
        return;
      case T::Crossbar:
        static_cast<const net::Crossbar<P> &>(n).saveState(w);
        return;
      case T::Hypercube:
        static_cast<const net::Hypercube<P> &>(n).saveState(w);
        return;
      case T::Omega:
        static_cast<const net::OmegaNet<P> &>(n).saveState(w);
        return;
      case T::Hierarchical:
        static_cast<const net::HierarchicalNet<P> &>(n).saveState(w);
        return;
    }
    sim::panic("unknown topology");
}

template <typename P>
void
loadTopology(Reader &r, net::Network<P> &n, MachineConfig::Topology t)
{
    using T = MachineConfig::Topology;
    switch (t) {
      case T::Ideal:
        static_cast<net::IdealNetwork<P> &>(n).loadState(r);
        return;
      case T::Crossbar:
        static_cast<net::Crossbar<P> &>(n).loadState(r);
        return;
      case T::Hypercube:
        static_cast<net::Hypercube<P> &>(n).loadState(r);
        return;
      case T::Omega:
        static_cast<net::OmegaNet<P> &>(n).loadState(r);
        return;
      case T::Hierarchical:
        static_cast<net::HierarchicalNet<P> &>(n).loadState(r);
        return;
    }
    sim::panic("unknown topology");
}

void
saveRng(Writer &w, const sim::Rng &rng)
{
    for (std::uint64_t word : rng.state())
        w.u64(word);
}

std::array<std::uint64_t, 4>
loadRngState(Reader &r)
{
    std::array<std::uint64_t, 4> s{};
    for (std::uint64_t &word : s)
        word = r.u64();
    return s;
}

} // namespace

void
Machine::saveSnapshot(std::ostream &os) const
{
    Writer w;

    // ---- fingerprint: what the restoring machine must match --------
    w.u32(cfg_.numPEs);
    w.u64(cfg_.seed);
    w.u8(static_cast<std::uint8_t>(cfg_.topology));
    w.u8(static_cast<std::uint8_t>(cfg_.mapping));
    w.b(cfg_.reliableNet);
    w.u64(cfg_.isWordsPerPe);
    w.b(faults_ != nullptr);
    w.b(cfg_.profile);
    w.u64(program_.numCodeBlocks());
    w.u64(program_.totalInstructions());

    // ---- core scalars ----------------------------------------------
    w.u64(now_);
    w.u64(allocPtr_);
    w.b(deadlocked_);
    w.u32(tokenSeq_);
    w.b(serialIsCycle_);

    // ---- outputs ---------------------------------------------------
    w.u64(outputs_.size());
    for (const OutputRecord &rec : outputs_) {
        snapSave(w, rec.tag);
        snapSave(w, rec.value);
    }

    // ---- per-PE pipeline state -------------------------------------
    for (const auto &pe_ptr : pes_) {
        const Pe &pe = *pe_ptr;
        snapSave(w, pe.inQ);
        w.u64(pe.waitStore.size());
        pe.waitStore.forEach(
            [&w](const graph::Tag &tag, const Waiting &wt) {
                snapSave(w, tag);
                w.u64(wt.filled);
                w.u8(wt.arrived);
                w.u8(wt.expected);
                w.u64(wt.slots.size());
                for (const graph::Value &v : wt.slots)
                    snapSave(w, v);
            });
        w.u64(pe.matchBusy);
        // ReadyOp is private to Machine, so the fetch queue is encoded
        // inline rather than through the generic ring-queue codec.
        w.u64(pe.fetchQ.size());
        for (std::size_t i = 0; i < pe.fetchQ.size(); ++i) {
            const ReadyOp &op = pe.fetchQ.at(i);
            snapSave(w, op.enabled);
            w.u64(op.readyAt);
            w.u32(op.born);
        }
        w.u64(pe.aluBusy);
        snapSave(w, pe.outQ);
        snapSave(w, pe.isQ);
        w.u64(pe.isBusy);
        pe.isStore.save(w);
        snapSave(w, pe.stats.tokensIn);
        snapSave(w, pe.stats.fired);
        snapSave(w, pe.stats.matchBusyCycles);
        snapSave(w, pe.stats.aluBusyCycles);
        snapSave(w, pe.stats.isBusyCycles);
        snapSave(w, pe.stats.outputTokens);
        snapSave(w, pe.stats.bypassTokens);
        snapSave(w, pe.stats.matchOverflows);
        snapSave(w, pe.stats.dupTokensDropped);
        snapSave(w, pe.stats.dupStoresSuppressed);
        w.u64(pe.stats.waitStorePeak);
    }

    // ---- shared services -------------------------------------------
    contexts_.save(w);
    if (faults_) {
        saveRng(w, faults_->rng());
        const sim::fault::FaultInjector::Stats &fs = faults_->stats();
        w.u64(fs.decisions);
        w.u64(fs.drops);
        w.u64(fs.duplicates);
        w.u64(fs.corrupts);
        w.u64(fs.delays);
        w.u64(fs.linkDownDrops);
    }

    // ---- network ---------------------------------------------------
    if (rel_) {
        rel_->saveState(w);
        saveTopology<net::Envelope<graph::Token>>(w, rel_->inner(),
                                                  cfg_.topology);
    } else {
        saveTopology<graph::Token>(w, *net_, cfg_.topology);
    }

    // ---- machine-level histograms ----------------------------------
    snapSave(w, wmResidency_);
    snapSave(w, birthToFire_);
    snapSave(w, readLatency_);
    snapSave(w, reqLatency_);

    // ---- steady-state serving --------------------------------------
    w.b(serving_);
    w.b(admitBlocked_);
    w.u64(nextAdmit_);
    w.u64(reqCompleted_);
    w.u64(watermarkHits_);
    w.u64(requests_.size());
    for (const ServeRequest &req : requests_) {
        w.u16(req.cb);
        w.u64(req.args.size());
        for (const graph::Value &v : req.args)
            snapSave(w, v);
        w.u64(req.arrival);
        w.b(req.done);
    }

    // ---- hot-spot profile ------------------------------------------
    if (cfg_.profile) {
        w.u64(profile_.fires.size());
        for (std::uint64_t f : profile_.fires)
            w.u64(f);
        for (std::uint64_t c : profile_.cycles)
            w.u64(c);
    }

    w.finish(os);
}

void
Machine::restoreSnapshot(std::istream &is)
{
    // Restore onto a reset machine: warmed allocations survive, and a
    // restore that throws partway leaves the machine reset again (the
    // catch below), never half-restored.
    reset();
    Reader r(is);
    try {
        // ---- fingerprint -------------------------------------------
        auto check = [](bool ok, const char *what) {
            if (!ok)
                throw Error(std::string("snapshot: machine mismatch "
                                        "(") +
                            what + ")");
        };
        check(r.u32() == cfg_.numPEs, "numPEs");
        check(r.u64() == cfg_.seed, "seed");
        check(r.u8() == static_cast<std::uint8_t>(cfg_.topology),
              "topology");
        check(r.u8() == static_cast<std::uint8_t>(cfg_.mapping),
              "mapping");
        check(r.b() == cfg_.reliableNet, "reliableNet");
        check(r.u64() == cfg_.isWordsPerPe, "isWordsPerPe");
        check(r.b() == (faults_ != nullptr), "fault plan");
        check(r.b() == cfg_.profile, "profile");
        check(r.u64() == program_.numCodeBlocks(), "program shape");
        check(r.u64() == program_.totalInstructions(),
              "program shape");

        // ---- core scalars ------------------------------------------
        now_ = r.u64();
        allocPtr_ = r.u64();
        deadlocked_ = r.b();
        tokenSeq_ = r.u32();
        serialIsCycle_ = r.b();

        // ---- outputs -----------------------------------------------
        const std::uint64_t nOut = r.u64();
        for (std::uint64_t i = 0; i < nOut; ++i) {
            OutputRecord rec;
            snapLoad(r, rec.tag);
            snapLoad(r, rec.value);
            outputs_.push_back(std::move(rec));
        }

        // ---- per-PE pipeline state ---------------------------------
        for (auto &pe_ptr : pes_) {
            Pe &pe = *pe_ptr;
            snapLoad(r, pe.inQ);
            const std::uint64_t nWm = r.u64();
            for (std::uint64_t i = 0; i < nWm; ++i) {
                graph::Tag tag;
                snapLoad(r, tag);
                auto [wp, inserted] = pe.waitStore.insert(tag);
                if (!inserted)
                    r.fail("duplicate waiting-matching tag");
                Waiting &wt = *wp;
                wt.filled = r.u64();
                wt.arrived = r.u8();
                wt.expected = r.u8();
                const std::uint64_t nSlots = r.u64();
                wt.slots.clear();
                for (std::uint64_t k = 0; k < nSlots; ++k) {
                    graph::Value v;
                    snapLoad(r, v);
                    wt.slots.push_back(std::move(v));
                }
            }
            pe.matchBusy = r.u64();
            pe.fetchQ.clear();
            const std::uint64_t nFetch = r.u64();
            for (std::uint64_t i = 0; i < nFetch; ++i) {
                ReadyOp op;
                snapLoad(r, op.enabled);
                op.readyAt = r.u64();
                op.born = r.u32();
                pe.fetchQ.push_back(std::move(op));
            }
            pe.aluBusy = r.u64();
            snapLoad(r, pe.outQ);
            snapLoad(r, pe.isQ);
            pe.isBusy = r.u64();
            pe.isStore.load(r);
            snapLoad(r, pe.stats.tokensIn);
            snapLoad(r, pe.stats.fired);
            snapLoad(r, pe.stats.matchBusyCycles);
            snapLoad(r, pe.stats.aluBusyCycles);
            snapLoad(r, pe.stats.isBusyCycles);
            snapLoad(r, pe.stats.outputTokens);
            snapLoad(r, pe.stats.bypassTokens);
            snapLoad(r, pe.stats.matchOverflows);
            snapLoad(r, pe.stats.dupTokensDropped);
            snapLoad(r, pe.stats.dupStoresSuppressed);
            pe.stats.waitStorePeak = r.u64();
        }

        // ---- shared services ---------------------------------------
        contexts_.load(r);
        if (faults_) {
            const auto rngState = loadRngState(r);
            sim::fault::FaultInjector::Stats fs;
            fs.decisions = r.u64();
            fs.drops = r.u64();
            fs.duplicates = r.u64();
            fs.corrupts = r.u64();
            fs.delays = r.u64();
            fs.linkDownDrops = r.u64();
            faults_->restore(rngState, fs);
        }

        // ---- network -----------------------------------------------
        if (rel_) {
            rel_->loadState(r);
            loadTopology<net::Envelope<graph::Token>>(r, rel_->inner(),
                                                      cfg_.topology);
        } else {
            loadTopology<graph::Token>(r, *net_, cfg_.topology);
        }

        // ---- machine-level histograms ------------------------------
        snapLoad(r, wmResidency_);
        snapLoad(r, birthToFire_);
        snapLoad(r, readLatency_);
        snapLoad(r, reqLatency_);

        // ---- steady-state serving ----------------------------------
        serving_ = r.b();
        admitBlocked_ = r.b();
        nextAdmit_ = r.u64();
        reqCompleted_ = r.u64();
        watermarkHits_ = r.u64();
        const std::uint64_t nReq = r.u64();
        for (std::uint64_t i = 0; i < nReq; ++i) {
            ServeRequest req;
            req.cb = r.u16();
            const std::uint64_t nArgs = r.u64();
            for (std::uint64_t k = 0; k < nArgs; ++k) {
                graph::Value v;
                snapLoad(r, v);
                req.args.push_back(std::move(v));
            }
            req.arrival = r.u64();
            req.done = r.b();
            requests_.push_back(std::move(req));
        }
        if (nextAdmit_ > requests_.size())
            r.fail("admission cursor past the request queue");

        // ---- hot-spot profile --------------------------------------
        if (cfg_.profile) {
            const std::uint64_t n = r.u64();
            if (n != profile_.fires.size())
                r.fail("profile size does not match the program");
            for (std::uint64_t &f : profile_.fires)
                f = r.u64();
            for (std::uint64_t &c : profile_.cycles)
                c = r.u64();
        }

        r.expectEnd();
    } catch (...) {
        reset();
        throw;
    }

    // Recompute the shard-local occupancy accumulators for *this*
    // machine's thread layout — they are derived state, maintained
    // incrementally during a run, and the snapshot may have been
    // written under a different shard count.
    for (Shard &sh : shards_) {
        sh.activeItems = 0;
        sh.busyStages = 0;
        sh.wmEntries = 0;
        sh.pendingAppends = 0;
        sh.next = 0;
        for (std::uint32_t p = sh.first; p < sh.last; ++p) {
            const Pe &pe = *pes_[p];
            sh.activeItems += pe.inQ.size() + pe.fetchQ.size() +
                              pe.outQ.size() + pe.isQ.size();
            sh.busyStages +=
                static_cast<std::uint32_t>(pe.matchBusy > 0) +
                static_cast<std::uint32_t>(pe.aluBusy > 0) +
                static_cast<std::uint32_t>(pe.isBusy > 0);
            sh.wmEntries += pe.waitStore.size();
            auto countAppends =
                [&sh](const sim::RingQueue<graph::Token> &q) {
                    for (std::size_t i = 0; i < q.size(); ++i)
                        if (q.at(i).kind ==
                            graph::TokenKind::IsAppend)
                            ++sh.pendingAppends;
                };
            countAppends(pe.inQ);
            countAppends(pe.isQ);
        }
    }
}

} // namespace ttda

/**
 * @file
 * Emulator: the fast, untimed execution engine (the right-hand prong
 * of the paper's Figure 3-1 development plan).
 *
 * Like the MIT emulation facility, it interprets the same compiled
 * graphs as the detailed simulator but abstracts away internal machine
 * timing: tokens are processed in breadth-first *waves*, where wave
 * k+1 holds exactly the tokens produced by wave k. Wave boundaries
 * therefore measure the program's inherent dataflow depth, and the
 * number of instructions fired per wave is the program's ideal
 * parallelism profile — with unbounded PEs and unit latency, wave
 * count is the critical-path length.
 *
 * The firing rules, context management, and I-structure semantics are
 * the same graph::Executor / mem::IStructure code the detailed machine
 * uses, so the two engines can be cross-checked operation-for-
 * operation (experiment E10).
 */

#ifndef TTDA_TTDA_EMULATOR_HH
#define TTDA_TTDA_EMULATOR_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "graph/context.hh"
#include "graph/exec.hh"
#include "graph/program.hh"
#include "graph/token.hh"
#include "mem/istructure.hh"

namespace ttda
{

/** A value delivered by an OUTPUT instruction. */
struct OutputRecord
{
    graph::Tag tag;
    graph::Value value;
};

/** Untimed wave-based interpreter for tagged-token dataflow graphs. */
class Emulator
{
  public:
    struct Stats
    {
        std::uint64_t fired = 0;       //!< activities executed
        std::uint64_t tokens = 0;      //!< tokens produced
        std::uint64_t waves = 0;       //!< dataflow depth executed
        std::uint64_t maxWaveWidth = 0; //!< peak ideal parallelism
        double avgParallelism = 0.0;   //!< fired / waves
        std::vector<std::uint64_t> profile; //!< fired per wave
    };

    /**
     * @param program   the compiled graphs (must outlive the emulator)
     * @param is_words  I-structure storage capacity
     */
    explicit Emulator(const graph::Program &program,
                      std::size_t is_words = 1u << 20);

    /** Inject an input value into `param` of code block `cb` (root
     *  context, iteration 1). Call before run(). */
    void input(std::uint16_t cb, std::uint16_t param, graph::Value v);

    /**
     * Run to quiescence. @return the OUTPUT records, in the order they
     * were produced. Fatal if max_fired activities execute without
     * quiescing (runaway program).
     */
    std::vector<OutputRecord> run(std::uint64_t max_fired = 100'000'000);

    const Stats &stats() const { return stats_; }

    /** Opt into per-instruction activity counting: fireCounts()[i]
     *  then holds the number of times the instruction with global
     *  index i (see Program::instrIndexOffsets) fired. Off by default
     *  (the counters cost a vector indexing per activity). Call
     *  before run(). */
    void enableFireCounts();

    /** Per-instruction activity counts (empty unless enabled). */
    const std::vector<std::uint64_t> &fireCounts() const
    {
        return fireCounts_;
    }

    /** Deferred reads still parked after run(): nonzero means the
     *  program deadlocked on a never-written I-structure cell. */
    std::size_t outstandingReads() const
    {
        return istructure_.outstandingReads();
    }

    const mem::IStructureStats &
    istructureStats() const
    {
        return istructure_.stats();
    }

    graph::ContextManager &contexts() { return contexts_; }

    /** Direct I-structure access for workload setup/inspection. */
    mem::IStructure<graph::IsCont, graph::Value> &
    istructureRaw()
    {
        return istructure_;
    }

  private:
    /** Deliver one token: match, fire, and collect produced tokens. */
    void deliver(graph::Token tok, std::deque<graph::Token> &next);

    /** Fire an activity whose operands are complete. */
    void fire(const graph::Tag &tag, std::vector<graph::Value> operands,
              std::deque<graph::Token> &next);

    struct Waiting
    {
        std::vector<graph::Value> slots;
        std::uint8_t arrived = 0;
        std::uint8_t expected = 0;
    };

    const graph::Program &program_;
    graph::ContextManager contexts_;
    graph::Executor executor_;
    mem::IStructure<graph::IsCont, graph::Value> istructure_;
    std::unordered_map<graph::Tag, Waiting, graph::TagHash> waiting_;
    std::deque<graph::Token> wave_;
    std::vector<OutputRecord> outputs_;
    Stats stats_;
    std::vector<std::uint64_t> fireCounts_;
    std::vector<std::size_t> instrOffsets_;
};

} // namespace ttda

#endif // TTDA_TTDA_EMULATOR_HH

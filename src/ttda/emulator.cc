#include "ttda/emulator.hh"

#include "common/logging.hh"

namespace ttda
{

Emulator::Emulator(const graph::Program &program, std::size_t is_words)
    : program_(program), executor_(program, contexts_),
      istructure_(is_words)
{
    program_.validate();
}

void
Emulator::input(std::uint16_t cb, std::uint16_t param, graph::Value v)
{
    const graph::CodeBlock &block = program_.codeBlock(cb);
    SIM_ASSERT_MSG(param < block.numParams,
                   "input param {} beyond the {} params of '{}'", param,
                   block.numParams, block.name);
    graph::Token t;
    t.kind = graph::TokenKind::Normal;
    t.tag = graph::Tag{graph::rootContext, cb, param, 1};
    t.port = 0;
    t.nt = block.at(param).nt;
    t.data = std::move(v);
    wave_.push_back(std::move(t));
}

void
Emulator::enableFireCounts()
{
    instrOffsets_ = program_.instrIndexOffsets();
    fireCounts_.assign(program_.totalInstructions(), 0);
}

void
Emulator::fire(const graph::Tag &tag, std::vector<graph::Value> operands,
               std::deque<graph::Token> &next)
{
    const graph::Instruction &in =
        program_.instruction(tag.codeBlock, tag.stmt);
    if (in.constant)
        operands.push_back(*in.constant);
    graph::EnabledInstruction enabled{tag, std::move(operands)};
    std::vector<graph::Token> produced = executor_.execute(enabled);
    stats_.fired += 1;
    stats_.tokens += produced.size();
    if (!fireCounts_.empty())
        fireCounts_[instrOffsets_[tag.codeBlock] + tag.stmt] += 1;
    for (auto &t : produced)
        next.push_back(std::move(t));
}

namespace
{

/** Turn a satisfied I-structure read into the token that carries it:
 *  to its reader instruction, or onward to a copy-target cell. */
graph::Token
forwardServed(const graph::IsCont &cont, const graph::Value &value)
{
    graph::Token t;
    if (cont.toCell) {
        t.kind = graph::TokenKind::IsStore;
        t.addr = cont.cellAddr;
        t.data = value;
    } else {
        t.kind = graph::TokenKind::Normal;
        t.tag = cont.cont.tag;
        t.port = cont.cont.port;
        t.nt = cont.cont.nt;
        t.data = value;
    }
    return t;
}

} // namespace

void
Emulator::deliver(graph::Token tok, std::deque<graph::Token> &next)
{
    using graph::TokenKind;
    switch (tok.kind) {
      case TokenKind::Normal: {
        if (tok.nt == 1) {
            fire(tok.tag, {std::move(tok.data)}, next);
            break;
        }
        Waiting &w = waiting_[tok.tag];
        if (w.expected == 0) {
            w.expected = tok.nt;
            w.slots.resize(tok.nt);
        }
        SIM_ASSERT_MSG(tok.port < w.expected,
                       "token port {} out of range for nt {} at tag",
                       tok.port, w.expected);
        w.slots[tok.port] = std::move(tok.data);
        w.arrived += 1;
        if (w.arrived == w.expected) {
            auto node = waiting_.extract(tok.tag);
            fire(tok.tag, std::move(node.mapped().slots), next);
        }
        break;
      }

      case TokenKind::IsFetch: {
        std::vector<std::pair<graph::IsCont, graph::Value>> out;
        istructure_.fetch(tok.addr,
                          graph::IsCont{.cont = tok.reply}, out);
        for (auto &[cont, value] : out)
            next.push_back(forwardServed(cont, value));
        break;
      }

      case TokenKind::IsStore: {
        std::vector<std::pair<graph::IsCont, graph::Value>> out;
        const bool ok = istructure_.store(tok.addr, tok.data, out);
        if (!ok) {
            sim::warn("emulator: multiple write to i-structure cell {}",
                      tok.addr);
        }
        for (auto &[cont, value] : out)
            next.push_back(forwardServed(cont, value));
        break;
      }

      case TokenKind::IsAlloc: {
        const auto n = static_cast<std::size_t>(tok.data.asInt());
        const std::uint64_t base = istructure_.allocate(n);
        SIM_ASSERT_MSG(base != ~std::uint64_t{0},
                       "i-structure storage exhausted allocating {}", n);
        graph::Token t;
        t.kind = TokenKind::Normal;
        t.tag = tok.reply.tag;
        t.port = tok.reply.port;
        t.nt = tok.reply.nt;
        t.data = graph::Value{
            graph::IPtr{base, static_cast<std::uint32_t>(n)}};
        next.push_back(std::move(t));
        break;
      }

      case TokenKind::IsAppend: {
        // Functional update (paper Section 2.2.4, footnote 4): copy
        // the structure, replacing one element. A source cell that is
        // not yet written is copied *non-strictly*: a deferred read
        // is parked on it whose continuation stores into the new
        // structure's cell when the producer's write arrives.
        const std::uint32_t len =
            static_cast<std::uint32_t>(tok.aux >> 32);
        const std::uint64_t idx = tok.aux & 0xffffffffu;
        const std::uint64_t base = istructure_.allocate(len);
        SIM_ASSERT_MSG(base != ~std::uint64_t{0},
                       "i-structure storage exhausted appending {}",
                       len);
        std::vector<std::pair<graph::IsCont, graph::Value>> out;
        for (std::uint32_t k = 0; k < len; ++k) {
            if (k == idx) {
                istructure_.store(base + k, tok.data, out);
                continue;
            }
            istructure_.fetch(
                tok.addr + k,
                graph::IsCont{.toCell = true, .cellAddr = base + k},
                out);
        }
        for (auto &[cont, value] : out)
            next.push_back(forwardServed(cont, value));
        graph::Token t;
        t.kind = TokenKind::Normal;
        t.tag = tok.reply.tag;
        t.port = tok.reply.port;
        t.nt = tok.reply.nt;
        t.data = graph::Value{graph::IPtr{base, len}};
        next.push_back(std::move(t));
        break;
      }

      case TokenKind::Output:
        outputs_.push_back(OutputRecord{tok.tag, std::move(tok.data)});
        break;
    }
}

std::vector<OutputRecord>
Emulator::run(std::uint64_t max_fired)
{
    while (!wave_.empty()) {
        stats_.waves += 1;
        const std::uint64_t fired_before = stats_.fired;
        std::deque<graph::Token> next;
        while (!wave_.empty()) {
            graph::Token tok = std::move(wave_.front());
            wave_.pop_front();
            deliver(std::move(tok), next);
        }
        const std::uint64_t width = stats_.fired - fired_before;
        stats_.profile.push_back(width);
        stats_.maxWaveWidth = std::max(stats_.maxWaveWidth, width);
        SIM_ASSERT_MSG(stats_.fired <= max_fired,
                       "emulator exceeded {} activities; runaway "
                       "program?", max_fired);
        wave_ = std::move(next);
    }
    stats_.avgParallelism =
        stats_.waves ? static_cast<double>(stats_.fired) / stats_.waves
                     : 0.0;
    return outputs_;
}

} // namespace ttda

/**
 * @file
 * The cycle-level Tagged-Token Dataflow Machine (paper Figures 2-3 and
 * 2-4).
 *
 * The machine is a set of processing elements joined by a packet
 * network. Each PE is the pipeline of Figure 2-4:
 *
 *   input -> [classify] -> waiting-matching -> instruction fetch
 *         -> ALU -> output section -> network
 *
 * with an I-structure controller beside it servicing d=1 tokens
 * against the PE's partition of structure storage, and a PE controller
 * absorbing d=2 (OUTPUT) tokens. Every stage accepts at most one item
 * per cycle, with configurable per-stage latencies, so stage occupancy
 * statistics (experiment E8) fall directly out of the model.
 *
 * Idealizations (documented in DESIGN.md):
 *  - context interning and structure-storage allocation are shared
 *    constant-time services charged as ordinary ALU work;
 *  - queues are unbounded (the real machine asserts back-pressure).
 *
 * Global I-structure addresses interleave across PEs: word g lives on
 * PE (g mod numPEs) at local offset (g div numPEs).
 *
 * Parallel engine (MachineConfig::threads > 1): the PEs are sharded
 * across host threads and each simulated cycle runs as a two-phase
 * tick — phase A computes every PE's stage steps into per-PE staging
 * buffers in parallel, phase B commits the staged effects in PE-index
 * order on the calling thread. Anything whose sequential outcome
 * depends on cross-PE ordering (context interning, global structure
 * allocation, token sequence stamping, network injection) happens in
 * phase B, so the results are bit-identical to the sequential engine
 * for any thread count (see docs/ARCHITECTURE.md, "Deterministic
 * parallel engine").
 */

#ifndef TTDA_TTDA_MACHINE_HH
#define TTDA_TTDA_MACHINE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/fault.hh"
#include "common/flatmap.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/ringqueue.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "graph/context.hh"
#include "graph/exec.hh"
#include "graph/profile.hh"
#include "graph/program.hh"
#include "graph/token.hh"
#include "mem/istructure.hh"
#include "net/network.hh"
#include "net/reliable.hh"
#include "ttda/emulator.hh" // OutputRecord

namespace ttda
{

/** Machine-level configuration. */
struct MachineConfig
{
    std::uint32_t numPEs = 4;

    enum class Topology
    {
        Ideal,        //!< fixed latency + jitter, no contention
        Crossbar,     //!< C.mmp-style n x n switch
        Hypercube,    //!< emulation-facility cube (numPEs = 2^d)
        Omega,        //!< multistage shuffle (numPEs = 2^k)
        Hierarchical, //!< Cm*-style clusters
    };
    Topology topology = Topology::Ideal;

    sim::Cycle netLatency = 2;  //!< Ideal: fixed transit latency
    sim::Cycle netJitter = 0;   //!< Ideal: extra uniform random delay
    std::uint32_t clusterSize = 4;   //!< Hierarchical
    sim::Cycle localLatency = 2;     //!< Hierarchical cluster bus
    sim::Cycle globalLatency = 8;    //!< Hierarchical intercluster bus
    sim::Cycle hopLatency = 1;       //!< Hypercube per-link

    // PE stage service times (cycles per item).
    sim::Cycle matchCycles = 1;  //!< waiting-matching per token
    sim::Cycle fetchCycles = 1;  //!< instruction fetch
    sim::Cycle aluCycles = 1;    //!< ALU per operation (default)

    /** Per-opcode ALU latency overrides (e.g. multi-cycle divide). */
    std::map<graph::Opcode, sim::Cycle> opLatency;
    std::uint32_t outputBandwidth = 2; //!< tokens the output section
                                       //!< can emit per cycle

    /** Capacity of the waiting-matching associative store (entries);
     *  0 = unbounded. Beyond it, inserts spill to slow overflow
     *  memory, costing matchOverflowPenalty extra cycles each — the
     *  finite-associative-store pressure the real TTDA faced. */
    std::uint32_t matchCapacity = 0;
    sim::Cycle matchOverflowPenalty = 10;

    /** Admission control for the serving fast path (serve()): stop
     *  injecting queued requests once total waiting-matching occupancy
     *  reaches the high watermark, and resume once it drains back to
     *  the low watermark (0 = high/2). high == 0 disables the gate:
     *  every request is injected the cycle it arrives. */
    std::uint32_t wmHighWatermark = 0;
    std::uint32_t wmLowWatermark = 0;

    // I-structure controller.
    sim::Cycle isReadCycles = 1;
    sim::Cycle isWriteCycles = 2;
    std::size_t isWordsPerPe = 1u << 18;

    /** How activities are spread over PEs. */
    enum class Mapping
    {
        HashTag,     //!< hash of the full tag (default)
        ByContext,   //!< hash of the context: one code-block
                     //!< invocation stays on one PE, so loop control
                     //!< never crosses the network (the real TTDA's
                     //!< work-distribution unit)
        ByIteration, //!< (ctx + iter) mod n: keeps an iteration local
        SinglePe,    //!< everything on PE 0 (sequential baseline)
    };
    Mapping mapping = Mapping::HashTag;

    bool localBypass = true; //!< same-PE tokens skip the network

    std::uint64_t seed = 1;
    std::uint64_t maxCycles = 50'000'000;

    /** Fault-injection plan (see sim::fault). An empty plan (the
     *  default) leaves every fault hook compiled in but disabled: the
     *  machine is bit-identical to one built before the subsystem
     *  existed. FaultPlan::seed == 0 derives the injector seed from
     *  `seed` above, so replaying a run needs only the machine seed. */
    sim::fault::FaultPlan faults;

    /** Wrap the token network in net::ReliableNet: sequence-numbered
     *  envelopes, ACKs, timeout retransmission and receive-side
     *  dedup. The fault injector then acts on the envelope fabric and
     *  the machine survives loss (until retries are exhausted). */
    bool reliableNet = false;
    net::RetryConfig retry; //!< retransmission policy when reliableNet

    /** Host threads for the parallel engine: the PEs are split into
     *  `threads` contiguous shards stepped concurrently under the
     *  two-phase tick. Results (cycle counts, statistics, outputs,
     *  traces modulo event file order) are bit-identical to the
     *  sequential engine. Clamped to numPEs; 0 or 1 selects the plain
     *  sequential engine. */
    std::uint32_t threads = 1;

    /** When set, one line per machine event (token classified,
     *  activity fired, structure operation, output) is written here —
     *  the simulator's debug trace. Hot path cost is a null check. */
    std::ostream *trace = nullptr;

    /** When set, token-lifecycle events (waiting-matching, fires,
     *  network transit, I-structure traffic) are emitted as Chrome
     *  trace-event JSON: one process per PE plus one for the network,
     *  one thread per pipeline stage. Must be open()ed/attach()ed by
     *  the caller before run(). Hot path cost when null is a single
     *  branch per SIM_TRACE site. */
    sim::Tracer *tracer = nullptr;

    /** Stamp tokens with seq/birth-cycle and sample the birth-to-fire
     *  and read-latency histograms. Implied by an active tracer;
     *  enabled by --stats-json. Off by default so the per-fire path
     *  pays nothing for lifecycle accounting nobody will read. */
    bool latencyStats = false;

    /** When set, the machine samples a time-series row into this
     *  recorder every recorder-interval cycles, at the serial point
     *  of the tick (after network receive), so the series is
     *  bit-identical for any `threads`. The machine registers its
     *  series in the ctor; null = no sampling (and no cost). */
    sim::MetricsRecorder *metrics = nullptr;

    /** Attribute fires and ALU cycles to source instructions over the
     *  dense Program::instrIndexOffsets index space (the cross-tier
     *  hot-spot profiler). Rides the Obs path: off = zero cost. */
    bool profile = false;
};

/** Per-PE statistics (stage occupancy for experiment E8). */
struct PeStats
{
    sim::Counter tokensIn;        //!< tokens classified
    sim::Counter fired;           //!< activities executed
    sim::Counter matchBusyCycles; //!< waiting-matching occupied
    sim::Counter aluBusyCycles;   //!< ALU occupied
    sim::Counter isBusyCycles;    //!< I-structure controller occupied
    sim::Counter outputTokens;    //!< tokens through the output section
    sim::Counter bypassTokens;    //!< tokens short-circuited locally
    sim::Counter matchOverflows;  //!< inserts beyond the WM capacity
    sim::Counter dupTokensDropped; //!< duplicate operands discarded at
                                   //!< the waiting-matching section
                                   //!< (fault injection only)
    sim::Counter dupStoresSuppressed; //!< repeated writes of the same
                                      //!< structure cell absorbed
                                      //!< idempotently (faults only)
    std::uint64_t waitStorePeak = 0; //!< peak waiting-matching entries
};

/** The multi-PE cycle-level machine. */
class Machine
{
  public:
    Machine(const graph::Program &program, MachineConfig config);
    ~Machine();

    /** Inject an input value into `param` of code block `cb` before
     *  run() (root context, iteration 1). */
    void input(std::uint16_t cb, std::uint16_t param, graph::Value v);

    /** Pre-populate I-structure storage with a fully written array
     *  (workload setup); returns the pointer to pass as an input. */
    graph::IPtr preload(const std::vector<graph::Value> &values);

    /** Run to quiescence (or deadlock / maxCycles). */
    std::vector<OutputRecord> run();

    /**
     * Run until quiescence or until the simulated clock reaches
     * `stopAt`, whichever comes first. @return true when the run
     * paused at `stopAt` (resume with another runUntil/run call),
     * false when it reached quiescence. The pause point is checked at
     * the serial top of the tick — a paused machine has no staged
     * (mid-tick) state, so it can be snapshotted — and the landing
     * cycle depends only on (program, config, stopAt), never on the
     * thread count. Latency histograms and profiles are complete at
     * every pause; deadlock detection and metrics finalization run
     * only when the run completes.
     */
    bool runUntil(sim::Cycle stopAt);

    /** Whether the last runUntil/serveUntil paused at its stop cycle
     *  rather than reaching quiescence. */
    bool paused() const { return paused_; }

    /** Output records accumulated so far (complete after run()/serve()
     *  return; partial while paused). */
    const std::vector<OutputRecord> &outputs() const { return outputs_; }

    // ---- steady-state serving fast path ----------------------------

    /** Queue one request for serve(): a fresh root application of code
     *  block `cb` with args[i] bound to parameter i, arriving
     *  (open-loop) at cycle `arrival`. Requests must be submitted in
     *  non-decreasing arrival order. @return the request id; tokens of
     *  request r run in the root context with iter == r + 1, so its
     *  OUTPUT records (and stranded activities in deadlockReport())
     *  are attributable to it. */
    std::uint32_t submit(std::uint16_t cb,
                         std::vector<graph::Value> args,
                         sim::Cycle arrival);

    /** Run the machine as a server: inject every submitted request
     *  into the running machine at its arrival cycle (subject to the
     *  admission watermark), run to quiescence, and record each
     *  request's arrival-to-completion latency into requestLatency().
     *  Injection happens at the serial point of the tick, so serving
     *  runs are bit-identical for any `threads`. */
    std::vector<OutputRecord> serve();

    /** serve() with a pause point: run the serving loop until
     *  quiescence (all requests drained) or cycle `stopAt`. Unlike
     *  serve() this is resumable — call it again (or on a machine
     *  restored from a mid-serve snapshot) to continue the same
     *  serving run. @return true when paused. */
    bool serveUntil(sim::Cycle stopAt);

    // ---- checkpoint / restore --------------------------------------

    /**
     * Serialize the complete run state — every field reset() clears:
     * pipeline queues, waiting-matching stores, structure storage,
     * contexts, network (including ReliableNet protocol state), fault
     * -injector RNG, statistics, histograms, serving queue — into the
     * versioned snapshot envelope (common/snapshot.hh). Call only
     * while the machine is quiescent or paused (runUntil/serveUntil);
     * never mid-run. Restore-then-run is bit-identical to the
     * uninterrupted run, for any thread count on either side.
     */
    void saveSnapshot(std::ostream &os) const;

    /**
     * Restore a snapshot written by saveSnapshot onto this machine.
     * The machine must have been constructed with the same program
     * and an equivalent MachineConfig (numPEs, seed, topology,
     * mapping, reliableNet, structure-store size and fault plan are
     * fingerprinted and verified; stage latencies and the rest are
     * trusted). The thread count may differ. Throws
     * sim::snapshot::Error on a truncated, corrupt, or mismatched
     * snapshot, leaving the machine reset.
     */
    void restoreSnapshot(std::istream &is);

    /** Return the machine to its freshly-constructed state while
     *  keeping every warmed allocation: the waiting-matching stores
     *  keep their table capacity, structure storage its materialized
     *  chunks, network queues and heaps their buffers, and the worker
     *  pool its threads. A reset-then-run is bit-identical to a fresh
     *  machine's run (cycle count, outputs, statistics). The external
     *  MetricsRecorder, if any, is not rewound — reuse across resets
     *  needs a fresh recorder per run. */
    void reset();

    /**
     * Replace the fault plan between runs (fleet replicas: each job
     * carries its own plan). An enabled plan builds a fresh injector —
     * seed 0 derives from the machine seed, as at construction — and
     * an empty plan removes injection entirely. Call only while the
     * machine is quiescent (typically right after reset()); a
     * reset-then-setFaultPlan-then-run is bit-identical to a fresh
     * machine constructed with that plan.
     */
    void setFaultPlan(const sim::fault::FaultPlan &plan);

    /** Arrival-to-completion latency (cycles), one sample per
     *  completed request; includes admission queueing delay. */
    const sim::Histogram &requestLatency() const { return reqLatency_; }
    std::uint64_t requestsSubmitted() const { return requests_.size(); }
    std::uint64_t requestsCompleted() const { return reqCompleted_; }
    /** Admission-gate closures: open -> blocked transitions at the
     *  high watermark while serving. */
    std::uint64_t watermarkHits() const { return watermarkHits_; }

    sim::Cycle cycles() const { return now_; }
    bool deadlocked() const { return deadlocked_; }

    /** Reads parked on deferred lists when the machine went idle. */
    std::size_t outstandingReads() const;

    std::uint64_t totalFired() const;
    double aluUtilization() const; //!< busy ALU cycles / (cycles*PEs)
    double opsPerCycle() const;    //!< fired / cycles

    const PeStats &peStats(std::uint32_t pe) const;
    const net::NetStats &netStats() const;
    const MachineConfig &config() const { return cfg_; }
    graph::ContextManager &contexts() { return contexts_; }

    /** The fault injector driving this run, or null when the plan is
     *  empty. */
    const sim::fault::FaultInjector *faultInjector() const
    {
        return faults_.get();
    }

    /** The reliability wrapper, or null when reliableNet is off. */
    const net::ReliableNet<graph::Token> *reliableNet() const
    {
        return rel_;
    }

    /** Aggregated I-structure statistics across all controllers. */
    mem::IStructureStats istructureTotals() const;

    /** Distribution of total waiting-matching residency, sampled
     *  every cycle (experiment E8). */
    const sim::Histogram &waitStoreResidency() const
    {
        return wmResidency_;
    }

    /** Cycles from a token's creation to the fire of the activity it
     *  enabled (token-lifecycle latency; one sample per fire).
     *  Populated only when MachineConfig::latencyStats is set or a
     *  tracer is active. Complete after run() returns (per-shard
     *  samples are merged there). */
    const sim::Histogram &birthToFireLatency() const
    {
        return birthToFire_;
    }

    /** Cycles from an I-structure FETCH's issue to its response being
     *  emitted by the controller (includes deferral time). */
    const sim::Histogram &readLatency() const { return readLatency_; }

    /** Per-source-instruction fire/cycle attribution (populated when
     *  MachineConfig::profile; complete after run() merges shards). */
    const graph::InstrProfile &profile() const { return profile_; }

    /** Ranked hot-instruction report (MachineConfig::profile). */
    void
    dumpProfile(std::ostream &os, std::size_t topN) const
    {
        graph::writeTopN(os, program_, profile_, topN);
    }

    /** Collapsed-stack (flamegraph) export of the profile. */
    void
    dumpFolded(std::ostream &os) const
    {
        graph::writeFolded(os, program_, profile_);
    }

    /** gem5-style statistics listing (machine and per-PE groups). */
    void dumpStats(std::ostream &os) const;

    /** The same statistics as one machine-readable JSON document:
     *  each group keyed by name, plus a "histograms" object with the
     *  wm-residency / birth-to-fire / read-latency distributions. */
    void dumpStatsJson(std::ostream &os) const;

    /** Structured diagnosis after a deadlocked run: every stranded
     *  waiting-matching entry (tag, filled-port bitmask, missing
     *  ports), every I-structure cell with parked readers (and who
     *  the readers are), and any packets still inside the network. */
    std::string deadlockReport() const;

  private:
    struct Waiting
    {
        std::vector<graph::Value> slots;
        std::uint64_t filled = 0; //!< bitmask of ports already arrived
        std::uint8_t arrived = 0;
        std::uint8_t expected = 0;
    };

    struct ReadyOp
    {
        graph::EnabledInstruction enabled;
        sim::Cycle readyAt = 0;
        std::uint32_t born = 0; //!< birth of the enabling (last) token
    };

    /** One queued serving request: a root application injected into
     *  the running machine when its arrival cycle is due and the
     *  admission gate is open. */
    struct ServeRequest
    {
        std::uint16_t cb = 0;
        std::vector<graph::Value> args; //!< moved out on injection
        sim::Cycle arrival = 0;
        bool done = false; //!< first OUTPUT seen; latency recorded
    };

    /**
     * Per-PE staging for the two-phase tick. Phase A never mutates
     * state another shard can read, so everything a stage would have
     * pushed beyond its own PE — or whose value depends on a shared
     * counter — lands here, and phase B replays it in PE-index order:
     *
     *  - emitFire/emitIs: tokens created this cycle (ALU fires, then
     *    structure replies/serves), in creation order, without their
     *    Token::seq stamp (the global sequence is assigned at commit).
     *  - pendingFire: a context-touching fire (LoopEntry/LoopExit/
     *    Apply/Return) whose execution must wait for the serial phase
     *    because context interning is order-sensitive.
     *  - pendingIs: an ALLOC/APPEND whose global-allocation side
     *    effects run at commit.
     *  - outPlan/outFresh: the output section's pop order with dst
     *    precomputed into Token::pe; routing (bypass push or network
     *    send) happens at commit so injection order is PE order.
     *  - output: an OUTPUT token absorbed by the PE controller this
     *    cycle (appended to the host list at commit).
     */
    struct Staging
    {
        std::vector<graph::Token> emitFire;
        std::vector<graph::Token> emitIs;
        std::size_t fireUsed = 0; //!< emitFire prefix moved to outPlan
        std::size_t isUsed = 0;   //!< emitIs prefix moved to outPlan
        std::vector<graph::Token> outPlan;
        std::vector<std::uint8_t> outFresh;
        ReadyOp pendingFire;
        graph::Token pendingIs;
        OutputRecord output;
        bool fireDeferred = false;
        bool isDeferred = false;
        bool tailDeferred = false; //!< output section left to phase B
        bool hasOutput = false;
    };

    struct Pe
    {
        explicit Pe(std::size_t is_words) : isStore(is_words) {}

        sim::RingQueue<graph::Token> inQ;
        /** The waiting-matching associative store: flat
         *  open-addressed, keyed on the full tag (hashed through its
         *  stable 64-bit packing), tombstone-free erases, rehash
         *  amortized across ticks — see docs/ARCHITECTURE.md, "The
         *  flat waiting-matching store". */
        sim::FlatHashMap<graph::Tag, Waiting, graph::TagHash> waitStore;
        sim::Cycle matchBusy = 0;
        sim::RingQueue<ReadyOp> fetchQ;
        sim::Cycle aluBusy = 0;
        sim::RingQueue<graph::Token> outQ;
        sim::RingQueue<graph::Token> isQ;
        sim::Cycle isBusy = 0;
        mem::IStructure<graph::IsCont, graph::Value> isStore;
        PeStats stats;
        Staging stage;
    };

    /**
     * One host thread's slice of the machine: a contiguous PE range
     * plus every accumulator a phase-A step may touch, so workers
     * never contend. Shard-local statistics (histograms) are merged
     * into the machine-level ones, in shard order, when run() returns;
     * occupancy counters are summed on demand (idle() etc.).
     */
    struct Shard
    {
        Shard(const graph::Program &program,
              graph::ContextManager &contexts)
            : exec(program, contexts)
        {
        }

        std::uint32_t first = 0; //!< owned PE range [first, last)
        std::uint32_t last = 0;

        /** Thread-local firing engine. Phase A only executes opcodes
         *  that never touch the shared ContextManager; fires that do
         *  are deferred to phase B (still run through this shard's
         *  executor, serially). */
        graph::Executor exec;

        // Incrementally maintained occupancy for the owned PEs.
        std::uint64_t activeItems = 0; //!< items in owned pipeline queues
        std::uint32_t busyStages = 0;  //!< owned stages with a countdown
        std::uint64_t wmEntries = 0;   //!< waiting-matching entries
        std::uint64_t pendingAppends = 0; //!< APPEND tokens in owned inQ/isQ

        sim::Cycle next = 0; //!< skip-ahead scan result for this shard

        sim::Histogram birthToFire{4.0, 128};
        sim::Histogram readLatency{4.0, 128};

        /** Per-shard profiler attribution (MachineConfig::profile);
         *  merged into the machine-level profile after run(). */
        graph::InstrProfile prof;

        /** Reused output buffer for Executor::execute (fire path). */
        std::vector<graph::Token> fireBuf;
        /** Free list recycling Waiting::slots / operand storage. */
        std::vector<std::vector<graph::Value>> slotPool;

        sim::TraceShard trc;
        sim::TraceShard *trcp = nullptr; //!< null when not tracing
        std::ostringstream dbgBuf; //!< parallel debug-trace staging
        std::ostream *dbg = nullptr; //!< debug-trace sink, may be null
    };

    sim::NodeId mapTag(const graph::Tag &tag) const;
    sim::NodeId mapToken(const graph::Token &t) const;
    std::uint64_t allocateGlobal(std::uint64_t n);
    void route(Shard &sh, sim::NodeId src, graph::Token t);

    /** All tokens enter a PE's input queue through here: keeps the
     *  owning shard's item count and APPEND-in-flight count right. */
    void
    pushInQ(Shard &sh, Pe &pe, graph::Token &&t)
    {
        if (t.kind == graph::TokenKind::IsAppend)
            ++sh.pendingAppends;
        pe.inQ.push_back(std::move(t));
        ++sh.activeItems;
    }

    // Chrome-trace track layout: process = PE (or numPEs for the
    // network), thread = pipeline stage within the PE.
    enum TraceTid : std::uint32_t
    {
        kTidWm = 0,     //!< waiting-matching section
        kTidFetch = 1,  //!< instruction fetch
        kTidAlu = 2,    //!< ALU
        kTidOutput = 3, //!< output section
        kTidIstr = 4,   //!< I-structure controller
    };
    void nameTraceTracks();
    std::vector<sim::StatGroup> statGroups() const;

    /** Register this machine's metrics series (ctor, when
     *  cfg_.metrics is set) and cache their ids. */
    void initMetrics();

    /** Stage every series' current value and record one row stamped
     *  now_. Called at the serial sample point of the run loops. */
    void sampleMetrics();

    // Stage steps. With defer=false they apply every effect directly
    // (the sequential engine and phase B); with defer=true (phase A)
    // order-sensitive effects land in the PE's Staging instead.
    //
    // The whole step/emit path is templated on Obs — whether the
    // machine is observing token lifecycles (latencyStats or an
    // active tracer). The Obs=false instantiation compiles out every
    // seq/born stamp, histogram sample, and SIM_TRACE site, so runs
    // without observability pay literally nothing for it; run()
    // selects the instantiation once.
    template <bool Obs>
    void stepInput(Shard &sh, Pe &pe, sim::NodeId id, bool defer);
    template <bool Obs>
    void stepAlu(Shard &sh, Pe &pe, sim::NodeId id, bool defer);
    template <bool Obs>
    void stepIs(Shard &sh, Pe &pe, sim::NodeId id, bool defer);
    template <bool Obs>
    void stepOutput(Shard &sh, Pe &pe, sim::NodeId id, bool defer);

    /** Queue a freshly created token for the output section: staged
     *  (seq assigned later) or stamped and pushed straight to outQ. */
    template <bool Obs>
    void emitNew(Shard &sh, Pe &pe, std::vector<graph::Token> *staged,
                 graph::Token &&t);

    /** Turn an I-structure controller's served continuations into
     *  response/store tokens (shared by every stepIs flavour). */
    template <bool Obs>
    void serveDeferred(
        Shard &sh, Pe &pe, sim::NodeId id, graph::TokenKind cause,
        std::vector<std::pair<graph::IsCont, graph::Value>> &served,
        std::vector<graph::Token> *staged);

    /** ALLOC/APPEND effects: global allocation, copy traffic, reply.
     *  Runs in stepIs (sequential) or phase B (parallel). */
    template <bool Obs>
    void applyAllocAppend(Shard &sh, Pe &pe, sim::NodeId id,
                          graph::Token tok);

    bool idle() const;

    // ---- steady-state serving --------------------------------------
    // All four run at serial points of the tick (top of the run-loop
    // iteration or inside the serial output commit), so serving is
    // bit-identical across thread counts.

    /** Inject request `rid` as a fresh top-level context: one token
     *  per parameter, tagged <root, cb, param, rid + 1>. */
    void injectRequest(std::uint32_t rid);

    /** Admission step: refresh the watermark gate and inject every
     *  due request it admits — plus one forced through when the
     *  machine is quiescent and the gate is wedged shut by stranded
     *  waiting-matching entries (the gate cannot reopen on its own). */
    void serveAdmit();

    /** Hysteresis on wmTotal(): block at >= high, reopen at <= low. */
    void updateAdmissionGate();

    /** Jump a quiescent machine to the next arrival and admit there.
     *  @return false when no requests remain to inject. */
    bool serveAdvance();

    /** The first OUTPUT carrying a request's initiation number
     *  completes it (latency sample, completion count). */
    void noteRequestOutput(const graph::Tag &tag);

    // ---- event-driven scheduler ------------------------------------
    // The run() loop skips stretches of cycles in which no stage can
    // make progress; these helpers keep the counters that make the
    // skip decision O(1)-ish and the batch accounting exact (see
    // docs/ARCHITECTURE.md, "Event-driven core").

    /** Jump now_ to the next cycle at which any stage or the network
     *  can act, batch-accounting busy counters and wm residency. */
    void skipAhead();

    /** Per-shard part of the skip decision: earliest cycle at which
     *  any owned PE can act, written to Shard::next. */
    void scanShard(Shard &sh);

    /** Load a stage's busy countdown (cycles *beyond* the current
     *  one), maintaining the shard's busy-stage count. */
    void
    setBusy(Shard &sh, sim::Cycle &slot, sim::Cycle extra)
    {
        if (extra > 0 && slot == 0)
            ++sh.busyStages;
        slot = extra;
    }

    /** One-cycle busy decrement at the top of a stage step. @return
     *  true when the stage spent this cycle draining its countdown. */
    bool
    tickBusy(Shard &sh, sim::Cycle &slot, sim::Counter &counter)
    {
        if (slot == 0)
            return false;
        counter.inc();
        if (--slot == 0)
            --sh.busyStages;
        return true;
    }

    /** One cycle of a fault-stalled PE: no stage starts new work, but
     *  in-flight operations (busy countdowns) keep draining — a stall
     *  freezes issue, not completion. */
    void
    tickStalled(Shard &sh, Pe &pe)
    {
        tickBusy(sh, pe.matchBusy, pe.stats.matchBusyCycles);
        tickBusy(sh, pe.aluBusy, pe.stats.aluBusyCycles);
        tickBusy(sh, pe.isBusy, pe.stats.isBusyCycles);
    }

    /** Batch-account `delta` skipped cycles against one busy slot. */
    void
    batchBusy(Shard &sh, sim::Cycle &slot, sim::Counter &counter,
              sim::Cycle delta)
    {
        if (slot == 0)
            return;
        const sim::Cycle n = std::min(slot, delta);
        counter.inc(n);
        slot -= n;
        if (slot == 0)
            --sh.busyStages;
    }

    // ---- zero-allocation fire path ---------------------------------

    /** Operand vector of n default values, reusing pooled storage. */
    std::vector<graph::Value>
    takeSlots(Shard &sh, std::size_t n)
    {
        if (sh.slotPool.empty())
            return std::vector<graph::Value>(n);
        std::vector<graph::Value> v = std::move(sh.slotPool.back());
        sh.slotPool.pop_back();
        v.clear();
        v.resize(n);
        return v;
    }

    /** Return an operand vector's storage to the pool. */
    void
    recycleSlots(Shard &sh, std::vector<graph::Value> &&v)
    {
        if (sh.slotPool.size() < 1024)
            sh.slotPool.push_back(std::move(v));
    }

    // ---- parallel engine -------------------------------------------

    Shard &shardOf(std::uint32_t p) { return shards_[shardIdx_[p]]; }

    std::uint64_t wmTotal() const;
    std::uint64_t pendingAppendsTotal() const;

    template <bool Obs>
    void runSequential();
    template <bool Obs>
    void runParallel();

    /** Phase A for one shard: stage steps for the owned PEs, staging
     *  order-sensitive effects. */
    template <bool Obs>
    void shardCycle(Shard &sh);

    /** Phase B: replay every PE's staged effects in PE-index order. */
    template <bool Obs>
    void commitCycle();

    /** Execute/flush the cycle's ALU product for one PE: run a
     *  deferred context-touching fire, or stamp the staged fire
     *  tokens, pushing all of them to outQ. */
    template <bool Obs>
    void commitFire(Shard &sh, Pe &pe);

    /** Stamp a staged token list (from `used` on) into outQ. */
    template <bool Obs>
    void commitEmit(Shard &sh, Pe &pe, std::vector<graph::Token> &vec,
                    std::size_t used);

    /** Stamp and route the staged output-section plan of one PE. */
    template <bool Obs>
    void commitStagedOutput(Shard &sh, Pe &pe, sim::NodeId id);

    /** skip-ahead for the parallel engine: parallel per-shard scans,
     *  serial min-reduction and batch accounting. */
    void skipParallel();

    /** Splice per-shard trace and debug-log buffers into their sinks,
     *  in shard order. */
    void flushShardLogs();

    const graph::Program &program_;
    MachineConfig cfg_;
    graph::ContextManager contexts_;
    std::unique_ptr<sim::fault::FaultInjector> faults_;
    std::unique_ptr<net::Network<graph::Token>> net_;
    net::ReliableNet<graph::Token> *rel_ = nullptr; //!< net_ when wrapped
    std::vector<std::unique_ptr<Pe>> pes_;
    std::vector<OutputRecord> outputs_;
    std::uint64_t allocPtr_ = 0;
    sim::Cycle now_ = 0;
    bool deadlocked_ = false;
    sim::Histogram wmResidency_{4.0, 128};
    sim::Histogram birthToFire_{4.0, 128};
    sim::Histogram readLatency_{4.0, 128};
    std::uint32_t tokenSeq_ = 0; //!< next Token::seq to hand out
    bool observing_ = false; //!< latencyStats, tracing, metrics, or
                             //!< profiling requested

    // ---- pause points (runUntil / serveUntil) ----------------------
    sim::Cycle stopAt_ = sim::neverCycle; //!< current runUntil bound
    bool paused_ = false; //!< last run stopped at stopAt_, not idle

    // ---- time-series metrics (cfg_.metrics) ------------------------
    sim::MetricsRecorder *metrics_ = nullptr;
    struct MetricsIds
    {
        std::vector<sim::MetricsRecorder::SeriesId> peFired;
        std::vector<sim::MetricsRecorder::SeriesId> peAluBusy;
        sim::MetricsRecorder::SeriesId wmEntries = 0;
        sim::MetricsRecorder::SeriesId activeItems = 0;
        sim::MetricsRecorder::SeriesId netQueued = 0;
        sim::MetricsRecorder::SeriesId netInFlight = 0;
        sim::MetricsRecorder::SeriesId isDeferred = 0;
        sim::MetricsRecorder::SeriesId faultsDestroyed = 0;
        sim::MetricsRecorder::SeriesId relRetransmits = 0;
        sim::MetricsRecorder::SeriesId relPending = 0;
        sim::MetricsRecorder::SeriesId srvInFlight = 0;
        sim::MetricsRecorder::SeriesId srvAdmitQueue = 0;
        sim::MetricsRecorder::SeriesId srvWatermarkHits = 0;
    };
    MetricsIds mIds_;

    // ---- steady-state serving (serve()) ----------------------------
    std::vector<ServeRequest> requests_;
    std::size_t nextAdmit_ = 0; //!< first request not yet injected
    std::uint64_t reqCompleted_ = 0;
    std::uint64_t watermarkHits_ = 0;
    bool admitBlocked_ = false; //!< admission gate currently shut
    bool serving_ = false;      //!< inside serve()
    sim::Histogram reqLatency_{16.0, 4096};

    // ---- hot-spot profiler (cfg_.profile) --------------------------
    graph::InstrProfile profile_;
    /** Global index of (cb, stmt) is instrOffsets_[cb] + stmt. */
    std::vector<std::size_t> instrOffsets_;

    /** ALU service time per opcode (cfg.aluCycles with cfg.opLatency
     *  overrides), resolved once so the fire path is a table load. */
    std::array<sim::Cycle, graph::numOpcodes> aluLatency_{};

    std::uint32_t threads_ = 1; //!< resolved shard count
    std::vector<Shard> shards_;
    std::vector<std::uint32_t> shardIdx_; //!< owning shard per PE
    std::unique_ptr<sim::WorkerPool> pool_;
    std::function<void(unsigned)> scanTask_;
    std::function<void(unsigned)> cycleTask_;

    /** An APPEND is in flight somewhere: its copy loop touches other
     *  PEs' structure stores, so this cycle's I-structure steps run
     *  entirely in phase B (the "serial-IS cycle" fallback). */
    bool serialIsCycle_ = false;
};

} // namespace ttda

#endif // TTDA_TTDA_MACHINE_HH

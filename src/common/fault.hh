/**
 * @file
 * Deterministic fault injection (the `sim::fault` subsystem).
 *
 * The paper's Issue 1 argues a scalable machine must tolerate long,
 * *unpredictable* memory/network latencies. Every fabric model in this
 * repository is perfectly reliable, so that claim was only ever
 * demonstrated under benign delay. This layer injects loss,
 * duplication, corruption, delay spikes, link-down windows, PE stalls
 * and memory-module timeouts — deterministically, so a faulty run is
 * exactly replayable and bit-identical across host thread counts.
 *
 * Determinism contract
 * --------------------
 * All probabilistic decisions are drawn from one xoshiro256** stream
 * owned by the FaultInjector, advanced exactly once per packet that
 * reaches a network's delivery point (Network::deliver). Packet
 * delivery order is a deterministic function of the simulated machine
 * (the parallel engine injects and delivers packets in PE-index order
 * regardless of host thread count — see docs/ARCHITECTURE.md,
 * "Deterministic parallel engine"), so the nth decision always applies
 * to the same packet: decisions are effectively keyed on the
 * (cycle, delivery-sequence) pair without storing either. Scheduled
 * events (link-down / PE-stall / memory-timeout windows) are keyed on
 * the cycle alone and consume no randomness.
 *
 * A FaultPlan is a value: copy it into a MachineConfig, or parse one
 * from the compact `--fault-plan` spec string (see FaultPlan::parse).
 */

#ifndef TTDA_COMMON_FAULT_HH
#define TTDA_COMMON_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace sim
{
namespace fault
{

/** A scheduled (non-probabilistic) fault event. */
struct Event
{
    enum class Kind : std::uint8_t
    {
        LinkDown,  //!< packets src->dst are destroyed in [from, to]
        PeStall,   //!< PE `a` starts no new stage work in [from, to]
        MemStall,  //!< memory module `a` serves no bank in [from, to]
        DropSpike, //!< drop rate boosted to a/1e6 in [from, to]
    };

    /** Wildcard for LinkDown endpoints: matches any node. */
    static constexpr std::uint32_t kAny = 0xffffffffu;

    Kind kind = Kind::LinkDown;
    sim::Cycle from = 0; //!< first affected cycle (inclusive)
    sim::Cycle to = 0;   //!< last affected cycle (inclusive)
    /** LinkDown: src; PeStall: PE; MemStall: module;
     *  DropSpike: rate scaled by 1e6 (0.05 -> 50000). */
    std::uint32_t a = kAny;
    std::uint32_t b = kAny; //!< LinkDown: dst
};

/**
 * The complete, seeded description of every fault a run will suffer.
 * Fully value-typed and comparable by field so configs can embed it.
 */
struct FaultPlan
{
    /** Seed for the probabilistic stream. 0 means "derive from the
     *  machine's root seed" (the machines mix their cfg.seed). */
    std::uint64_t seed = 0;

    // Per-packet probabilities, applied at the delivery point.
    double dropRate = 0.0;    //!< packet silently destroyed
    double dupRate = 0.0;     //!< packet delivered twice
    double corruptRate = 0.0; //!< detected-corrupt: CRC fails, dropped
    double delayRate = 0.0;   //!< packet held back `delaySpike` cycles

    sim::Cycle delaySpike = 16; //!< extra delay for delayed packets

    std::vector<Event> events; //!< scheduled windows

    /** True when the plan injects anything at all. */
    bool
    enabled() const
    {
        return dropRate > 0.0 || dupRate > 0.0 || corruptRate > 0.0 ||
               delayRate > 0.0 || !events.empty();
    }

    /** A canonical lossy plan for `--fault-seed` without an explicit
     *  `--fault-plan`: 1% drop, 0.5% duplicate, 0.1% corrupt, 1%
     *  delay-spike. */
    static FaultPlan defaultLossy(std::uint64_t seed);

    /**
     * Parse the compact comma-separated spec, e.g.
     *
     *   "seed=7,drop=0.01,dup=0.005,corrupt=0.001,delay=0.01,spike=16,
     *    linkdown@100-200:0>3,pestall@50-90:2,memstall@10-40:1"
     *
     * Window forms: `linkdown@FROM-TO[:SRC>DST]` (either endpoint may
     * be `*`), `pestall@FROM-TO:PE`, `memstall@FROM-TO:MODULE`,
     * `dropspike@FROM-TO:RATE` (drop rate boosted to RATE inside the
     * window — a brownout). Panics with a message on malformed input.
     */
    static FaultPlan parse(const std::string &spec);

    /** The plan rendered back as a parseable spec string. */
    std::string summary() const;
};

/** The verdict for one packet reaching a delivery point. */
struct PacketFate
{
    enum class Action : std::uint8_t
    {
        Deliver,   //!< untouched
        Drop,      //!< destroyed (probabilistic drop or link-down)
        Duplicate, //!< delivered twice
        Corrupt,   //!< corruption detected at the receiver; discarded
        Delay,     //!< held back extraDelay cycles, then delivered
    };

    Action action = Action::Deliver;
    sim::Cycle extraDelay = 0;
    bool scheduled = false; //!< Drop caused by a link-down window
};

/**
 * Executes a FaultPlan. One injector is shared by a machine and every
 * network/module it owns; all queries are made from the serial phase
 * of the simulation loop (sends, deliveries, skip-ahead scans), so no
 * synchronization is needed and the RNG stream order is deterministic.
 */
class FaultInjector
{
  public:
    /** Monotonic totals for the stats/forensics stack. */
    struct Stats
    {
        std::uint64_t decisions = 0;     //!< onPacket calls (RNG draws)
        std::uint64_t drops = 0;         //!< probabilistic drops
        std::uint64_t duplicates = 0;
        std::uint64_t corrupts = 0;
        std::uint64_t delays = 0;
        std::uint64_t linkDownDrops = 0; //!< scheduled window drops

        /** Packets destroyed outright — the quantity that converts a
         *  quiescent-but-unfinished run from "bug" to "loss". */
        std::uint64_t
        destroyed() const
        {
            return drops + corrupts + linkDownDrops;
        }
    };

    explicit FaultInjector(const FaultPlan &plan);

    /** Decide the fate of one packet at its delivery point. Advances
     *  the probabilistic stream exactly once per call (when any rate
     *  is configured). */
    PacketFate onPacket(sim::Cycle now, sim::NodeId src,
                        sim::NodeId dst);

    /** True when PE `pe` must not start new stage work in cycle `c`. */
    bool peStalled(sim::Cycle c, std::uint32_t pe) const;

    /** First cycle >= c at which PE `pe` is not stalled. */
    sim::Cycle peResume(sim::Cycle c, std::uint32_t pe) const;

    /** True when memory module `m` must not serve banks in cycle `c`. */
    bool memStalled(sim::Cycle c, std::uint32_t m) const;

    /** First cycle >= c at which module `m` is not stalled. */
    sim::Cycle memResume(sim::Cycle c, std::uint32_t m) const;

    /** The plan has at least one PeStall / MemStall window. */
    bool hasPeStalls() const { return !peStalls_.empty(); }
    bool hasMemStalls() const { return !memStalls_.empty(); }

    const FaultPlan &plan() const { return plan_; }
    const Stats &stats() const { return stats_; }

    /** Rewind to the injector's initial state — reseed the
     *  probabilistic stream and zero the totals — so a reused machine
     *  replays the exact same fault sequence as a fresh one. */
    void
    reset()
    {
        rng_.reseed(plan_.seed);
        stats_ = Stats{};
    }

    /** Checkpoint access: the probabilistic stream mid-sequence and
     *  the totals, so a restored machine replays the remainder of the
     *  fault sequence exactly. */
    const Rng &rng() const { return rng_; }
    void
    restore(const std::array<std::uint64_t, 4> &rngState,
            const Stats &stats)
    {
        rng_.setState(rngState);
        stats_ = stats;
    }

  private:
    bool linkDown(sim::Cycle c, sim::NodeId src, sim::NodeId dst) const;
    double effectiveDropRate(sim::Cycle c) const;

    FaultPlan plan_;
    bool anyRate_ = false;
    sim::Rng rng_;
    std::vector<Event> linkDowns_;
    std::vector<Event> peStalls_;
    std::vector<Event> memStalls_;
    std::vector<Event> dropSpikes_;
    Stats stats_;
};

} // namespace fault
} // namespace sim

#endif // TTDA_COMMON_FAULT_HH

/**
 * @file
 * Minimal std::format replacement for toolchains without <format>
 * (libstdc++ shipped it only with GCC 13).
 *
 * Supports positional "{}" placeholders only; each consumes the next
 * argument, streamed with operator<<. A literal brace is written as
 * "{{" or "}}". Unmatched placeholders/arguments are rendered verbatim
 * rather than throwing, since this is used on error paths.
 */

#ifndef TTDA_COMMON_FORMAT_HH
#define TTDA_COMMON_FORMAT_HH

#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sim
{

namespace detail
{

template <typename T>
std::string
stringify(const T &value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

inline std::string
formatImpl(std::string_view fmt, const std::vector<std::string> &args)
{
    std::string out;
    out.reserve(fmt.size() + 16 * args.size());
    std::size_t next = 0;
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        const char c = fmt[i];
        if (c == '{') {
            if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
                out.push_back('{');
                ++i;
            } else if (i + 1 < fmt.size() && fmt[i + 1] == '}') {
                out += next < args.size() ? args[next] : "{}";
                ++next;
                ++i;
            } else {
                out.push_back('{');
            }
        } else if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            out.push_back('}');
            ++i;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace detail

/** Substitute "{}" placeholders with the stringified arguments. */
template <typename... Args>
std::string
format(std::string_view fmt, Args &&...args)
{
    const std::vector<std::string> rendered{
        detail::stringify(std::forward<Args>(args))...};
    return detail::formatImpl(fmt, rendered);
}

} // namespace sim

#endif // TTDA_COMMON_FORMAT_HH

/**
 * @file
 * Versioned binary snapshot framing for deterministic checkpoints.
 *
 * A snapshot is a self-describing envelope around an opaque payload:
 *
 *     offset  size  field
 *          0     8  magic "TTDASNAP"
 *          8     4  format version (little-endian u32, currently 1)
 *         12     2  endianness tag: bytes {0x02, 0x01} = little-endian
 *         14     8  payload length in bytes (little-endian u64)
 *         22     N  payload
 *       22+N     4  CRC-32 (IEEE) of the payload (little-endian u32)
 *
 * Every multi-byte primitive inside the payload is written as explicit
 * little-endian bytes, so the format is host-independent; the tag
 * exists to reject snapshots from a hypothetical writer that used
 * native big-endian encoding, with a clear error instead of garbage.
 *
 * The Reader validates the whole envelope up front (magic, version,
 * endianness, length, CRC) and bounds-checks every subsequent read, so
 * truncated or corrupted files surface as snapshot::Error — never as
 * undefined behaviour. Element counts read from the payload are never
 * trusted for allocation: callers decode elements one at a time and
 * let the bounds check fail on a lying count.
 */

#ifndef TTDA_COMMON_SNAPSHOT_HH
#define TTDA_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sim::snapshot
{

/** Any malformed snapshot — truncated, corrupted, wrong magic,
 *  unsupported version, foreign endianness — and any semantic
 *  mismatch detected by higher layers (config/program fingerprint). */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

inline constexpr char kMagic[8] = {'T', 'T', 'D', 'A',
                                   'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kVersion = 1;
/** Byte sequence identifying the payload byte order; this writer only
 *  ever produces little-endian payloads. */
inline constexpr unsigned char kEndianTag[2] = {0x02, 0x01};

/** CRC-32 (IEEE 802.3, reflected) over a byte range. */
std::uint32_t crc32(const unsigned char *data, std::size_t n);

/** Accumulates a payload in memory; finish() wraps it in the
 *  envelope and writes the whole snapshot to a stream. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    /** Bit pattern of the double, so NaNs and signed zeros round-trip
     *  exactly. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(std::string_view s)
    {
        u64(s.size());
        buf_.append(s.data(), s.size());
    }

    std::size_t
    size() const
    {
        return buf_.size();
    }

    /** Write magic + version + endian tag + length + payload + CRC. */
    void finish(std::ostream &os) const;

  private:
    std::string buf_;
};

/** Parses and validates a snapshot envelope, then serves bounds-
 *  checked primitive reads from the payload. */
class Reader
{
  public:
    /** Reads the entire envelope from the stream and validates it;
     *  throws Error on any defect. */
    explicit Reader(std::istream &is);

    std::uint8_t
    u8()
    {
        return *need(1);
    }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            fail("bool out of range");
        return v != 0;
    }

    std::uint16_t
    u16()
    {
        const unsigned char *p = need(2);
        return static_cast<std::uint16_t>(
            p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
    }

    std::uint32_t
    u32()
    {
        const unsigned char *p = need(4);
        return static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (static_cast<std::uint64_t>(u32()) << 32);
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (n > remaining())
            fail("string length beyond payload");
        const unsigned char *p = need(static_cast<std::size_t>(n));
        return std::string(reinterpret_cast<const char *>(p),
                           static_cast<std::size_t>(n));
    }

    std::size_t
    remaining() const
    {
        return buf_.size() - pos_;
    }

    /** Assert the payload was consumed exactly. */
    void
    expectEnd() const
    {
        if (remaining() != 0)
            fail("trailing bytes after payload");
    }

    [[noreturn]] static void fail(const char *what);

  private:
    const unsigned char *
    need(std::size_t n)
    {
        if (n > remaining())
            fail("truncated payload");
        const unsigned char *p =
            reinterpret_cast<const unsigned char *>(buf_.data()) +
            pos_;
        pos_ += n;
        return p;
    }

    std::string buf_;
    std::size_t pos_ = 0;
};

} // namespace sim::snapshot

#endif // TTDA_COMMON_SNAPSHOT_HH

#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/format.hh"

namespace sim::json
{

// ---- construction ---------------------------------------------------

Value
Value::boolean(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.b_ = b;
    return v;
}

Value
Value::intNum(std::uint64_t n, bool negative)
{
    Value v;
    v.kind_ = Kind::Int;
    v.i_ = n;
    v.neg_ = negative && n != 0;
    return v;
}

Value
Value::num(double d)
{
    Value v;
    v.kind_ = Kind::Num;
    v.d_ = d;
    return v;
}

Value
Value::str(std::string s)
{
    Value v;
    v.kind_ = Kind::Str;
    v.s_ = std::move(s);
    return v;
}

Value
Value::arr()
{
    Value v;
    v.kind_ = Kind::Arr;
    return v;
}

Value
Value::obj()
{
    Value v;
    v.kind_ = Kind::Obj;
    return v;
}

// ---- accessors ------------------------------------------------------

namespace
{

[[noreturn]] void
wrongKind(const char *want)
{
    throw Error(std::string("json: value is not ") + want);
}

const Value &
nullSentinel()
{
    static const Value v;
    return v;
}

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        wrongKind("a boolean");
    return b_;
}

double
Value::asDouble() const
{
    if (kind_ == Kind::Num)
        return d_;
    if (kind_ == Kind::Int) {
        const double m = static_cast<double>(i_);
        return neg_ ? -m : m;
    }
    wrongKind("a number");
}

std::uint64_t
Value::asU64() const
{
    if (kind_ == Kind::Int) {
        if (neg_)
            wrongKind("a non-negative integer");
        return i_;
    }
    if (kind_ == Kind::Num) {
        if (d_ < 0 || d_ != std::floor(d_) ||
            d_ >= 18446744073709551616.0)
            wrongKind("a non-negative integer");
        return static_cast<std::uint64_t>(d_);
    }
    wrongKind("a non-negative integer");
}

std::int64_t
Value::asI64() const
{
    if (kind_ == Kind::Int) {
        if (!neg_) {
            if (i_ > 9223372036854775807ULL)
                wrongKind("an int64");
            return static_cast<std::int64_t>(i_);
        }
        if (i_ > 9223372036854775808ULL)
            wrongKind("an int64");
        return static_cast<std::int64_t>(0 - i_);
    }
    if (kind_ == Kind::Num) {
        if (d_ != std::floor(d_))
            wrongKind("an integer");
        return static_cast<std::int64_t>(d_);
    }
    wrongKind("an integer");
}

const std::string &
Value::asStr() const
{
    if (kind_ != Kind::Str)
        wrongKind("a string");
    return s_;
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Arr)
        return arr_.size();
    if (kind_ == Kind::Obj)
        return obj_.size();
    wrongKind("an array or object");
}

const Value &
Value::at(std::size_t i) const
{
    if (kind_ != Kind::Arr)
        wrongKind("an array");
    if (i >= arr_.size())
        throw Error("json: array index out of range");
    return arr_[i];
}

void
Value::push(Value v)
{
    if (kind_ != Kind::Arr)
        wrongKind("an array");
    arr_.push_back(std::move(v));
}

bool
Value::has(std::string_view key) const
{
    if (kind_ != Kind::Obj)
        return false;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return true;
    return false;
}

const Value &
Value::get(std::string_view key) const
{
    if (kind_ != Kind::Obj)
        wrongKind("an object");
    for (const auto &[k, v] : obj_)
        if (k == key)
            return v;
    throw Error(std::string("json: missing member \"") +
                std::string(key) + "\"");
}

const Value &
Value::opt(std::string_view key) const
{
    if (kind_ == Kind::Obj)
        for (const auto &[k, v] : obj_)
            if (k == key)
                return v;
    return nullSentinel();
}

void
Value::set(std::string key, Value v)
{
    if (kind_ != Kind::Obj)
        wrongKind("an object");
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(std::move(key), std::move(v));
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kind_ != Kind::Obj)
        wrongKind("an object");
    return obj_;
}

// ---- writer ---------------------------------------------------------

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
dumpTo(const Value &v, std::string &out)
{
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        return;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case Value::Kind::Int: {
        char buf[24];
        auto [p, ec] =
            std::to_chars(buf, buf + sizeof buf, v.intMagnitude());
        (void)ec;
        if (v.intIsNegative())
            out += '-';
        out.append(buf, p);
        return;
      }
      case Value::Kind::Num: {
        // %.17g round-trips any finite double exactly.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v.asDouble());
        out += buf;
        return;
      }
      case Value::Kind::Str:
        out += '"';
        out += escape(v.asStr());
        out += '"';
        return;
      case Value::Kind::Arr: {
        out += '[';
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i)
                out += ',';
            dumpTo(v.at(i), out);
        }
        out += ']';
        return;
      }
      case Value::Kind::Obj: {
        out += '{';
        bool first = true;
        for (const auto &[k, m] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += escape(k);
            out += "\":";
            dumpTo(m, out);
        }
        out += '}';
        return;
      }
    }
}

} // namespace

std::string
Value::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

// ---- parser ---------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what) const
    {
        throw Error(sim::format("json: {} at byte {}", what, pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c, const char *what)
    {
        if (!consume(c))
            fail(what);
    }

    void
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.size() - pos_ < n ||
            text_.compare(pos_, n, word) != 0)
            fail("bad literal");
        pos_ += n;
    }

    Value
    value()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return Value::str(string());
          case 't':
            literal("true");
            return Value::boolean(true);
          case 'f':
            literal("false");
            return Value::boolean(false);
          case 'n':
            literal("null");
            return Value::null();
          default:
            return number();
        }
    }

    Value
    object()
    {
        expect('{', "expected '{'");
        Value v = Value::obj();
        skipWs();
        if (consume('}'))
            return v;
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':', "expected ':'");
            v.set(std::move(key), value());
            skipWs();
            if (consume(','))
                continue;
            expect('}', "expected ',' or '}'");
            return v;
        }
    }

    Value
    array()
    {
        expect('[', "expected '['");
        Value v = Value::arr();
        skipWs();
        if (consume(']'))
            return v;
        for (;;) {
            v.push(value());
            skipWs();
            if (consume(','))
                continue;
            expect(']', "expected ',' or ']'");
            return v;
        }
    }

    std::string
    string()
    {
        expect('"', "expected '\"'");
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                out += unicodeEscape();
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    /** \uXXXX -> UTF-8 (BMP only; surrogate pairs combine). */
    std::string
    unicodeEscape()
    {
        const std::uint32_t hi = hex4();
        std::uint32_t cp = hi;
        if (hi >= 0xd800 && hi <= 0xdbff) {
            if (!consume('\\') || !consume('u'))
                fail("unpaired surrogate");
            const std::uint32_t lo = hex4();
            if (lo < 0xdc00 || lo > 0xdfff)
                fail("bad low surrogate");
            cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
        } else if (hi >= 0xdc00 && hi <= 0xdfff) {
            fail("unpaired surrogate");
        }
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
        return out;
    }

    std::uint32_t
    hex4()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                fail("unterminated \\u escape");
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        return v;
    }

    Value
    number()
    {
        const std::size_t start = pos_;
        const bool negative = consume('-');
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            fail("bad number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("bad number");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("bad number");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string_view tok =
            text_.substr(start, pos_ - start);
        if (integral) {
            // Exact 64-bit round-trip for integer tokens.
            std::uint64_t mag = 0;
            const std::string_view digits =
                negative ? tok.substr(1) : tok;
            const auto [p, ec] = std::from_chars(
                digits.data(), digits.data() + digits.size(), mag);
            if (ec == std::errc() && p == digits.data() + digits.size())
                return Value::intNum(mag, negative);
            // Overflows uint64: fall through to double.
        }
        double d = 0.0;
        const std::string owned(tok);
        d = std::strtod(owned.c_str(), nullptr);
        return Value::num(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace sim::json

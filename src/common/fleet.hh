/**
 * @file
 * Deterministic job-level parallelism: the fleet engine.
 *
 * The WorkerPool parallelizes *within* one machine's tick — PEs
 * sharded across host threads, two barrier crossings per simulated
 * cycle. That shape saturates quickly on small configurations: an
 * 8-PE machine cannot keep 8 host threads busy through a barrier
 * every few microseconds. Serving workloads offer the missing layer:
 * *independent* jobs (whole simulation epochs) that need no
 * cross-job synchronization at all, the replica-pool shape inference
 * serving stacks use.
 *
 * sim::Fleet runs K jobs across W workers:
 *
 *  - a sharded MPMC job queue hands out job indices: jobs are dealt
 *    round-robin across shards, each worker drains its home shard
 *    through an atomic cursor, and an empty-handed worker *steals*
 *    from the other shards in a deterministic scan order — the
 *    scalable-synchronization recipe (distribute the hot counter,
 *    contend only when idle) rather than one global ticket lock;
 *  - a lock-free completion ring records (job, worker) completion
 *    order for observability — host-order data stays out of every
 *    deterministic result by construction;
 *  - the existing WorkerPool supplies the threads: one run() call
 *    per batch, each shard looping jobs until the queue is dry.
 *
 * Determinism contract
 * --------------------
 * Which worker runs a job, and in what order, is host-scheduling
 * noise. Results stay bit-identical for any worker count because:
 *
 *  1. every job's computation must be a pure function of (replica
 *     construction state, job index) — per-job randomness derives
 *     from the job id via deriveJobSeed, never from the worker id or
 *     a shared stream;
 *  2. workers write results only into per-job slots (index = job id),
 *     so aggregation happens after the barrier, in job-index order;
 *  3. anything inherently host-ordered (the completion ring, steal
 *     counts, wall times) is segregated as informational.
 *
 * serve::TtdaFleet (src/serve) layers warm machine replicas on top.
 */

#ifndef TTDA_COMMON_FLEET_HH
#define TTDA_COMMON_FLEET_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/parallel.hh"

namespace sim
{

/** SplitMix64-mix a base seed with a job index: the per-job seed for
 *  fault plans, arrival schedules, and workload randomness. Never
 *  derive per-worker — that would tie results to the steal order. */
inline std::uint64_t
deriveJobSeed(std::uint64_t base, std::uint64_t job)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (job + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Sharded MPMC queue of job indices [0, jobs) with work stealing.
 *
 * Jobs are dealt round-robin across `shards` lanes; each lane is an
 * implicit arithmetic sequence consumed through one atomic cursor, so
 * pop() is a fetch_add — no locks, no per-job storage. A worker
 * drains its home lane first (cursor contention 1/shards of a single
 * shared counter), then scans the other lanes for leftovers. The
 * cursors over-advance benignly: a failed claim on a dry lane costs
 * one increment, bounded by the number of poppers.
 */
class JobQueue
{
  public:
    /** @param jobs   total job count (indices 0..jobs-1)
     *  @param shards lane count, clamped to [1, jobs] (0 picks one
     *                lane per expected worker — pass the worker
     *                count). */
    JobQueue(std::size_t jobs, std::size_t shards);

    std::size_t jobs() const { return jobs_; }
    std::size_t shards() const { return shards_.size(); }

    /**
     * Claim the next job for `worker`: its home lane first, then the
     * other lanes in cyclic scan order. Returns std::nullopt when
     * every lane is dry. Thread-safe; each job index is returned
     * exactly once.
     */
    std::optional<std::size_t> pop(unsigned worker);

    /** Jobs claimed from a non-home lane (informational: proves the
     *  stealing path ran; never feeds a deterministic result). */
    std::uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

  private:
    /** One lane: jobs shard, shard+S, shard+2S, ... consumed through
     *  an atomic position. Padded to its own cache line so cursor
     *  traffic never false-shares across lanes. */
    struct alignas(64) Lane
    {
        std::atomic<std::size_t> cursor{0};
        std::size_t count = 0; //!< jobs dealt into this lane
    };

    std::size_t jobs_;
    std::vector<Lane> shards_;
    std::atomic<std::uint64_t> steals_{0};
};

/**
 * Lock-free MPMC ring recording job completions in host order.
 * Capacity is fixed at construction (the fleet sizes it to the job
 * count, so pushes never wrap). Drained single-threaded after the
 * pool barrier.
 */
class CompletionRing
{
  public:
    struct Entry
    {
        std::uint32_t job = 0;
        std::uint32_t worker = 0;
    };

    explicit CompletionRing(std::size_t capacity);

    /** Record one completion. Lock-free: a fetch_add claims a slot.
     *  Asserts the ring was sized for every push (the fleet's ring
     *  is). */
    void push(std::uint32_t job, std::uint32_t worker);

    /** Completions recorded so far. Exact only after all pushers have
     *  passed a barrier (the fleet reads it after WorkerPool::run). */
    std::size_t size() const
    {
        return tail_.load(std::memory_order_acquire);
    }

    /** Entry i in completion (host) order. Valid for i < size() after
     *  the barrier. */
    const Entry &operator[](std::size_t i) const { return ring_[i]; }

    void clear() { tail_.store(0, std::memory_order_relaxed); }

  private:
    std::vector<Entry> ring_;
    std::atomic<std::size_t> tail_{0};
};

/**
 * The fleet engine: a persistent WorkerPool draining a JobQueue.
 *
 * One Fleet is built per worker count and reused across batches (the
 * pool's threads persist, like the machines' intra-tick pool). Each
 * run() deals the batch across the queue lanes, runs every worker's
 * pull loop to quiescence, and leaves the completion ring and steal
 * count readable until the next run().
 */
class Fleet
{
  public:
    struct Config
    {
        /** Worker count, including the calling thread (it runs jobs
         *  too, as worker 0). Clamped below by 1. */
        unsigned workers = 1;
        /** Queue lanes; 0 = one per worker. */
        std::size_t queueShards = 0;
        /** Spin budget handed to the WorkerPool (kSpinAuto resolves
         *  from SIM_SPIN_BUDGET / oversubscription; fleet workers park
         *  at one barrier per *batch*, not per tick, so yielding is
         *  nearly free here). */
        int spinBudget = WorkerPool::kSpinAuto;
    };

    explicit Fleet(Config cfg);

    unsigned workers() const { return pool_.size(); }

    /**
     * Run jobs 0..numJobs-1 to completion across the workers.
     * `runJob(worker, job)` is called exactly once per job, from an
     * unspecified worker and in an unspecified order; it must write
     * its result into storage indexed by `job` and touch no state
     * another job reads (machine replicas are per-worker, results
     * per-job). Exceptions thrown by a job propagate out of run()
     * (lowest-indexed throwing worker wins, per WorkerPool).
     */
    void run(std::size_t numJobs,
             const std::function<void(unsigned worker,
                                      std::size_t job)> &runJob);

    /** Completion order of the last run() — host scheduling truth,
     *  informational only. */
    const CompletionRing *completions() const { return ring_.get(); }

    /** Cross-lane claims during the last run(). */
    std::uint64_t steals() const
    {
        return queue_ ? queue_->steals() : 0;
    }

    /** Jobs each worker ran in the last run() (informational load
     *  balance; sums to the job count). */
    const std::vector<std::uint64_t> &jobsPerWorker() const
    {
        return jobsPerWorker_;
    }

  private:
    Config cfg_;
    WorkerPool pool_;
    std::unique_ptr<JobQueue> queue_;
    std::unique_ptr<CompletionRing> ring_;
    std::vector<std::uint64_t> jobsPerWorker_;
};

} // namespace sim

#endif // TTDA_COMMON_FLEET_HH

/**
 * @file
 * FlatHashMap: an open-addressing hash table on flat storage.
 *
 * Built for the waiting-matching store, the simulator's hottest
 * associative structure: token partners rendezvous by full tag, so
 * every token that is not monadic costs one probe (and half of them a
 * probe + erase). std::unordered_map serves that pattern with one
 * node allocation per entry and a pointer chase per probe; this table
 * keeps key/value pairs in a single power-of-two array and resolves
 * collisions by linear probing, so a probe is a masked index plus a
 * short contiguous scan.
 *
 * Deletion is tombstone-free: erasing an entry backward-shifts the
 * remainder of its probe cluster, so the table never degrades with
 * insert/erase cycling (the WM store's steady state) and never needs
 * a cleanup rehash.
 *
 * Growth is incremental. When the load factor crosses 3/4 the table
 * allocates a double-size successor and migrates a bounded number of
 * probe clusters per subsequent operation, so no single operation —
 * and therefore no single simulated cycle — absorbs a full-table
 * rehash. Lookups consult the successor first, then the draining
 * predecessor; clusters move atomically, preserving the
 * probe-path-intact invariant both tables rely on.
 */

#ifndef TTDA_COMMON_FLATMAP_HH
#define TTDA_COMMON_FLATMAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace sim
{

/**
 * Open-addressing hash map: power-of-two capacity, linear probing,
 * backward-shift deletion, incremental (amortized) rehash.
 *
 * Requirements: Key and Value default-constructible and movable; Key
 * equality-comparable; Hash stateless. Pointers returned by insert()
 * and find() stay valid until the next non-const operation on the
 * map (any operation may advance an in-progress migration).
 */
template <typename Key, typename Value, typename Hash>
class FlatHashMap
{
  public:
    /** @param initial_capacity rounded up to a power of two (min 8). */
    explicit FlatHashMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = kMinCapacity;
        while (cap < initial_capacity)
            cap <<= 1;
        cur_.init(cap);
    }

    std::size_t size() const { return cur_.count + old_.count; }
    bool empty() const { return size() == 0; }

    /** Slots allocated across the live table(s) (diagnostics). */
    std::size_t
    capacity() const
    {
        return cur_.slots.size() + old_.slots.size();
    }

    /** True while an incremental rehash is draining the old table. */
    bool rehashing() const { return old_.live(); }

    /**
     * Find `key`, default-constructing its value if absent —
     * std::unordered_map::try_emplace semantics. Returns the value
     * and whether it was inserted.
     */
    std::pair<Value *, bool>
    insert(const Key &key)
    {
        migrateStep();
        maybeGrow();
        const std::size_t h = Hash{}(key);
        if (Value *v = probe(cur_, key, h))
            return {v, false};
        if (old_.live()) {
            if (Value *v = probe(old_, key, h))
                return {v, false};
        }
        return {place(cur_, key, h), true};
    }

    /** Pointer to the value mapped to `key`, or nullptr. */
    Value *
    find(const Key &key)
    {
        migrateStep();
        const std::size_t h = Hash{}(key);
        if (Value *v = probe(cur_, key, h))
            return v;
        if (old_.live())
            return probe(old_, key, h);
        return nullptr;
    }

    /** Erase `key`; returns whether it was present. */
    bool
    erase(const Key &key)
    {
        migrateStep();
        const std::size_t h = Hash{}(key);
        if (eraseIn(cur_, key, h))
            return true;
        if (old_.live() && eraseIn(old_, key, h)) {
            if (old_.count == 0)
                old_.release();
            return true;
        }
        return false;
    }

    /** Visit every entry as f(const Key &, Value &). Order is
     *  unspecified (storage order, successor table first). */
    template <typename F>
    void
    forEach(F &&f)
    {
        visit(cur_, f);
        visit(old_, f);
    }

    template <typename F>
    void
    forEach(F &&f) const
    {
        visit(cur_, f);
        visit(old_, f);
    }

    void
    clear()
    {
        old_.release();
        const std::size_t cap = cur_.slots.size();
        cur_.release();
        cur_.init(cap);
    }

  private:
    static constexpr std::size_t kMinCapacity = 8;
    /** Entries migrated per operation while a rehash is draining.
     *  With growth triggered at 3/4 load into a 2x table, draining
     *  >= 2 entries per insert retires the old table well before the
     *  new one can reach its own threshold; 8 keeps the drain short
     *  without making any single operation expensive. */
    static constexpr std::size_t kMigrateChunk = 8;

    struct Slot
    {
        Key key{};
        Value val{};
    };

    struct Table
    {
        std::vector<Slot> slots;
        std::vector<std::uint8_t> used;
        std::size_t mask = 0;
        std::size_t count = 0;

        bool live() const { return !slots.empty(); }

        void
        init(std::size_t cap)
        {
            slots.assign(cap, Slot{});
            used.assign(cap, 0);
            mask = cap - 1;
            count = 0;
        }

        void
        release()
        {
            slots.clear();
            slots.shrink_to_fit();
            used.clear();
            used.shrink_to_fit();
            mask = 0;
            count = 0;
        }
    };

    /** Linear probe for `key` in `t`; nullptr when absent. Probe
     *  paths are empty-terminated: both tables keep every entry's
     *  home-to-slot run fully occupied (backward-shift deletion,
     *  cluster-atomic migration). */
    static Value *
    probe(Table &t, const Key &key, std::size_t h)
    {
        if (!t.live())
            return nullptr;
        std::size_t i = h & t.mask;
        while (t.used[i]) {
            if (t.slots[i].key == key)
                return &t.slots[i].val;
            i = (i + 1) & t.mask;
        }
        return nullptr;
    }

    static const Value *
    probe(const Table &t, const Key &key, std::size_t h)
    {
        return probe(const_cast<Table &>(t), key, h);
    }

    /** Insert a key known to be absent; returns its value slot. */
    static Value *
    place(Table &t, const Key &key, std::size_t h)
    {
        SIM_ASSERT_MSG(t.count < t.slots.size(),
                       "FlatHashMap table overfull (migration fell "
                       "behind?)");
        std::size_t i = h & t.mask;
        while (t.used[i])
            i = (i + 1) & t.mask;
        t.used[i] = 1;
        t.slots[i].key = key;
        ++t.count;
        return &t.slots[i].val;
    }

    bool
    eraseIn(Table &t, const Key &key, std::size_t h)
    {
        if (!t.live())
            return false;
        std::size_t i = h & t.mask;
        while (t.used[i]) {
            if (t.slots[i].key == key) {
                eraseSlot(t, i);
                return true;
            }
            i = (i + 1) & t.mask;
        }
        return false;
    }

    /**
     * Backward-shift deletion: close the hole at `i` by shifting back
     * every later cluster member whose probe path crosses `i`, then
     * clear the final vacated slot. Leaves all probe paths intact
     * with no tombstones.
     */
    static void
    eraseSlot(Table &t, std::size_t i)
    {
        const std::size_t mask = t.mask;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (!t.used[j])
                break;
            const std::size_t home = Hash{}(t.slots[j].key) & mask;
            // Entry j may fill the hole iff the hole lies on its
            // probe path, i.e. home .. i .. j in cyclic probe order.
            if (((j - home) & mask) >= ((j - i) & mask)) {
                t.slots[i] = std::move(t.slots[j]);
                i = j;
            }
        }
        t.slots[i] = Slot{};
        t.used[i] = 0;
        --t.count;
    }

    void
    maybeGrow()
    {
        // Trigger at 3/4 load on the insert target. If a previous
        // migration is somehow still draining (cannot happen at the
        // normal chunk pace), finish it first so at most two tables
        // ever exist.
        if ((cur_.count + 1) * 4 <= cur_.slots.size() * 3)
            return;
        if (old_.live())
            drainAll();
        Table grown;
        grown.init(cur_.slots.size() * 2);
        old_ = std::move(cur_);
        cur_ = std::move(grown);
        // Start the drain cursor at a cluster boundary: the first
        // free slot (one exists — the old table was below full).
        migratePos_ = 0;
        while (old_.used[migratePos_])
            migratePos_ = (migratePos_ + 1) & old_.mask;
        migrateLeft_ = old_.slots.size();
    }

    /** Move one maximal probe cluster starting at the cursor (which
     *  always rests on an empty slot or cluster head). */
    void
    migrateStep()
    {
        if (!old_.live())
            return;
        std::size_t moved = 0;
        while (old_.count > 0 && moved < kMigrateChunk) {
            // Skip free slots to the next cluster head.
            while (migrateLeft_ > 0 && !old_.used[migratePos_]) {
                migratePos_ = (migratePos_ + 1) & old_.mask;
                --migrateLeft_;
            }
            if (migrateLeft_ == 0)
                break;
            // Move the whole cluster: partial moves would break the
            // empty-terminated probe paths of the entries left behind.
            while (old_.used[migratePos_]) {
                Slot &s = old_.slots[migratePos_];
                Value *v =
                    place(cur_, s.key, Hash{}(s.key));
                *v = std::move(s.val);
                s = Slot{};
                old_.used[migratePos_] = 0;
                --old_.count;
                ++moved;
                migratePos_ = (migratePos_ + 1) & old_.mask;
                SIM_ASSERT(migrateLeft_ > 0);
                --migrateLeft_;
            }
        }
        if (old_.count == 0)
            old_.release();
    }

    void
    drainAll()
    {
        while (old_.live())
            migrateStep();
    }

    template <typename F>
    static void
    visit(Table &t, F &&f)
    {
        for (std::size_t i = 0; i < t.slots.size(); ++i)
            if (t.used[i])
                f(t.slots[i].key, t.slots[i].val);
    }

    template <typename F>
    static void
    visit(const Table &t, F &&f)
    {
        for (std::size_t i = 0; i < t.slots.size(); ++i)
            if (t.used[i])
                f(t.slots[i].key, t.slots[i].val);
    }

    Table cur_; //!< insert target (the only table when not rehashing)
    Table old_; //!< draining predecessor during incremental rehash
    std::size_t migratePos_ = 0;  //!< drain cursor into old_
    std::size_t migrateLeft_ = 0; //!< old_ slots not yet visited
};

} // namespace sim

#endif // TTDA_COMMON_FLATMAP_HH

#include "common/parallel.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace sim
{

namespace
{

/** Resolve kSpinAuto: SIM_SPIN_BUDGET wins, else spin only when the
 *  host has a hardware thread for every shard. A shard spinning on a
 *  core its barrier partner needs is pure livelock fuel — fleets
 *  nesting intra-machine pools oversubscribe routinely, and a 1-CPU
 *  CI container always does. */
int
resolveSpin(unsigned threads)
{
    if (const char *env = std::getenv("SIM_SPIN_BUDGET")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        SIM_ASSERT_MSG(end != env && *end == '\0' && v >= 0,
                       "SIM_SPIN_BUDGET must be a non-negative "
                       "integer, got '{}'",
                       env);
        return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && threads > hw)
        return 0;
    return WorkerPool::kDefaultSpin;
}

} // namespace

WorkerPool::WorkerPool(unsigned threads, int spinBudget)
    : threads_(threads < 1 ? 1 : threads),
      spin_(spinBudget == kSpinAuto ? resolveSpin(threads_)
                                    : spinBudget),
      errors_(threads_)
{
    SIM_ASSERT_MSG(spin_ >= 0, "spin budget must be >= 0, got {}",
                   spin_);
    workers_.reserve(threads_ - 1);
    for (unsigned s = 1; s < threads_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

WorkerPool::~WorkerPool()
{
    stop_.store(true, std::memory_order_relaxed);
    // Wake parked workers: they re-check stop_ whenever the epoch
    // advances.
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto &w : workers_)
        w.join();
}

void
WorkerPool::await(const std::atomic<std::uint64_t> &flag,
                  std::uint64_t target) const
{
    // Spin briefly (a tick is typically microseconds away), then yield
    // so an oversubscribed host still makes progress. spin_ is 0 when
    // the pool is oversubscribed: yield immediately and hand the core
    // to whichever shard still has work.
    for (int spin = 0; spin < spin_; ++spin) {
        if (flag.load(std::memory_order_acquire) >= target)
            return;
    }
    while (flag.load(std::memory_order_acquire) < target)
        std::this_thread::yield();
}

void
WorkerPool::runShard(unsigned shard)
{
    try {
        (*task_)(shard);
    } catch (...) {
        errors_[shard] = std::current_exception();
    }
}

void
WorkerPool::workerLoop(unsigned shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        await(epoch_, seen + 1);
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_relaxed))
            return;
        runShard(shard);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
WorkerPool::run(const std::function<void(unsigned)> &fn)
{
    SIM_ASSERT_MSG(task_ == nullptr,
                   "WorkerPool::run is not reentrant");
    if (threads_ == 1) {
        // No barrier needed; still propagate exceptions uniformly.
        fn(0);
        return;
    }
    done_.store(0, std::memory_order_relaxed);
    task_ = &fn;
    epoch_.fetch_add(1, std::memory_order_release);
    runShard(0);
    await(done_, threads_ - 1);
    task_ = nullptr;
    for (unsigned s = 0; s < threads_; ++s) {
        if (errors_[s]) {
            std::exception_ptr e = errors_[s];
            for (unsigned t = s; t < threads_; ++t)
                errors_[t] = nullptr;
            std::rethrow_exception(e);
        }
    }
}

} // namespace sim

/**
 * @file
 * EventHeap: a flat binary min-heap of (cycle, payload) events with
 * FIFO tie-breaking.
 *
 * The network and memory models keep their in-flight packets in a
 * structure ordered by ready cycle, popped strictly in (cycle,
 * insertion-order) order. std::multimap provides exactly that order
 * but pays a node allocation and a red-black rebalance per packet —
 * on the simulator's hottest paths (every send, every delivery).
 * This heap keeps the events in one contiguous vector and breaks
 * cycle ties with a monotonic sequence number, so its pop order is
 * bit-identical to the multimap's (equal keys pop in insertion
 * order) while push/pop are allocation-free sift operations.
 */

#ifndef TTDA_COMMON_EVENTHEAP_HH
#define TTDA_COMMON_EVENTHEAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace sim
{

/** Min-heap of timestamped events; ties pop in insertion order. */
template <typename T>
class EventHeap
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Ready cycle of the earliest event. */
    Cycle
    minKey() const
    {
        SIM_ASSERT_MSG(!heap_.empty(), "minKey() on an empty EventHeap");
        return heap_.front().key;
    }

    /** The earliest event's payload. */
    const T &
    top() const
    {
        SIM_ASSERT_MSG(!heap_.empty(), "top() on an empty EventHeap");
        return heap_.front().val;
    }

    void
    push(Cycle key, T val)
    {
        heap_.push_back(Node{key, nextSeq_++, std::move(val)});
        siftUp(heap_.size() - 1);
    }

    /** Remove and return the earliest event's payload. */
    T
    pop()
    {
        SIM_ASSERT_MSG(!heap_.empty(), "pop() on an empty EventHeap");
        T out = std::move(heap_.front().val);
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        return out;
    }

    void
    clear()
    {
        heap_.clear();
        nextSeq_ = 0;
    }

    /** Visit every node as (key, seq, value) in raw storage order —
     *  appending them back in the same order via restoreNode()
     *  reproduces the array (and thus the heap invariant and pop
     *  order) exactly. For checkpointing only. */
    template <typename F>
    void
    forEachNode(F &&f) const
    {
        for (const Node &n : heap_)
            f(n.key, n.seq, n.val);
    }

    /** Append a node verbatim at the end of the storage array.
     *  Only valid when replaying a forEachNode() dump in order onto a
     *  cleared heap; nodes arrive already heap-ordered. */
    void
    restoreNode(Cycle key, std::uint64_t seq, T val)
    {
        heap_.push_back(Node{key, seq, std::move(val)});
    }

    /** FIFO tie-break counter, part of the checkpointed state. */
    std::uint64_t nextSeq() const { return nextSeq_; }
    void setNextSeq(std::uint64_t s) { nextSeq_ = s; }

  private:
    struct Node
    {
        Cycle key = 0;
        std::uint64_t seq = 0; //!< monotonic: FIFO among equal keys
        T val{};

        bool
        before(const Node &o) const
        {
            return key != o.key ? key < o.key : seq < o.seq;
        }
    };

    void
    siftUp(std::size_t i)
    {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!heap_[i].before(heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t best = i;
            const std::size_t l = 2 * i + 1, r = 2 * i + 2;
            if (l < n && heap_[l].before(heap_[best]))
                best = l;
            if (r < n && heap_[r].before(heap_[best]))
                best = r;
            if (best == i)
                return;
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
    }

    std::vector<Node> heap_;
    std::uint64_t nextSeq_ = 0;
};

/** Checkpoint codecs: dump the node array verbatim in storage order
 *  (replaying it reproduces the heap, its tie-break order, and future
 *  pop order exactly). Payloads go through their own ADL overloads. */
template <typename W, typename T>
void
snapSave(W &w, const EventHeap<T> &h)
{
    w.u64(h.size());
    h.forEachNode(
        [&w](Cycle key, std::uint64_t seq, const T &val) {
            w.u64(key);
            w.u64(seq);
            snapSave(w, val);
        });
    w.u64(h.nextSeq());
}

template <typename R, typename T>
void
snapLoad(R &r, EventHeap<T> &h)
{
    h.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Cycle key = r.u64();
        const std::uint64_t seq = r.u64();
        T val{};
        snapLoad(r, val);
        h.restoreNode(key, seq, std::move(val));
    }
    h.setNextSeq(r.u64());
}

} // namespace sim

#endif // TTDA_COMMON_EVENTHEAP_HH

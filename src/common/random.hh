/**
 * @file
 * Deterministic pseudo-random streams for workload generation.
 *
 * Every stochastic element of a simulation draws from its own Rng
 * instance seeded from the experiment configuration, so runs are exactly
 * reproducible and independent streams do not interact.
 *
 * The generator is xoshiro256** (public domain, Blackman & Vigna),
 * seeded through SplitMix64 as its authors recommend.
 */

#ifndef TTDA_COMMON_RANDOM_HH
#define TTDA_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"

namespace sim
{

/** A small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1badb002) { reseed(seed); }

    /** Re-initialize the stream from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SIM_ASSERT(bound != 0);
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = ~std::uint64_t{0} -
                                    (~std::uint64_t{0} % bound);
        std::uint64_t v;
        do {
            v = next();
        } while (v >= limit);
        return v % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        SIM_ASSERT(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish bounded delay: uniform in [min, max]. */
    std::uint64_t
    delay(std::uint64_t min, std::uint64_t max)
    {
        SIM_ASSERT(min <= max);
        return min + below(max - min + 1);
    }

    /** Raw generator state, for checkpointing mid-stream. */
    const std::array<std::uint64_t, 4> &
    state() const
    {
        return state_;
    }

    /** Resume a stream exactly where state() captured it. */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        state_ = s;
    }

  private:
    std::array<std::uint64_t, 4> state_{};
};

} // namespace sim

#endif // TTDA_COMMON_RANDOM_HH

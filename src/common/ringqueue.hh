/**
 * @file
 * RingQueue: a FIFO on a power-of-two ring buffer.
 *
 * The PE pipeline queues (input, fetch, output, I-structure) push at
 * the back and pop at the front, usually holding a handful of items —
 * exactly the access pattern std::deque serves with 512-byte chunk
 * allocations and pointer-chasing it doesn't need. The ring keeps the
 * live window contiguous (modulo one wrap), so the hot push/pop pair
 * is an index increment and a mask, with no allocation at steady
 * state.
 *
 * Capacity grows geometrically when full (unbounded queues are a
 * documented machine idealization), relocating the live window to the
 * front of the new buffer. Elements must be movable; moves are used
 * for growth and pop.
 */

#ifndef TTDA_COMMON_RINGQUEUE_HH
#define TTDA_COMMON_RINGQUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace sim
{

/** Growable single-ended FIFO over a power-of-two ring. */
template <typename T>
class RingQueue
{
  public:
    /** @param initial_capacity rounded up to a power of two (min 4). */
    explicit RingQueue(std::size_t initial_capacity = 8)
    {
        std::size_t cap = 4;
        while (cap < initial_capacity)
            cap <<= 1;
        buf_.resize(cap);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    T &
    front()
    {
        SIM_ASSERT_MSG(size_ > 0, "front() on an empty RingQueue");
        return buf_[head_];
    }

    const T &
    front() const
    {
        SIM_ASSERT_MSG(size_ > 0, "front() on an empty RingQueue");
        return buf_[head_];
    }

    void
    push_back(T v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
        ++size_;
    }

    void
    pop_front()
    {
        SIM_ASSERT_MSG(size_ > 0, "pop_front() on an empty RingQueue");
        buf_[head_] = T{}; // release held resources promptly
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

    /** Element `i` positions behind the front (0 == front). */
    const T &
    at(std::size_t i) const
    {
        SIM_ASSERT_MSG(i < size_, "RingQueue::at({}) with size {}", i,
                       size_);
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

  private:
    void
    grow()
    {
        std::vector<T> next(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

/** Checkpoint codecs: front-to-back element dump. The head position
 *  within the ring is not behavioural state — only FIFO order is —
 *  so a restored queue is rebuilt from index 0. */
template <typename W, typename T>
void
snapSave(W &w, const RingQueue<T> &q)
{
    w.u64(q.size());
    for (std::size_t i = 0; i < q.size(); ++i)
        snapSave(w, q.at(i));
}

template <typename R, typename T>
void
snapLoad(R &r, RingQueue<T> &q)
{
    q.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        T v{};
        snapLoad(r, v);
        q.push_back(std::move(v));
    }
}

} // namespace sim

#endif // TTDA_COMMON_RINGQUEUE_HH

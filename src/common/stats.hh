/**
 * @file
 * Lightweight statistics primitives for the machine models.
 *
 * Three kinds of statistic cover everything the experiments need:
 *
 *  - Counter:   a monotonically increasing event count.
 *  - Accumulator: tracks sum / min / max / mean of a sampled quantity.
 *  - Histogram: bucketed distribution with fixed-width bins.
 *
 * A StatGroup gathers named statistics belonging to one modelled unit so
 * benchmarks and tests can dump them uniformly.
 */

#ifndef TTDA_COMMON_STATS_HH
#define TTDA_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace sim
{

namespace detail
{

/** Write a double as a JSON number: full round-trip precision,
 *  non-finite values as null (JSON has no NaN/Infinity). */
inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

/** Conventional percentile key for a quantile: 0.5 -> "p50",
 *  0.99 -> "p99", 0.999 -> "p999" (tenths fold into the digits). */
inline std::string
quantileKey(double q)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%g", q * 100.0);
    std::string key = "p";
    for (const char *c = buf; *c; ++c)
        if (*c != '.')
            key += *c;
    return key;
}

} // namespace detail

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Tracks sum, count, min, max, and mean of a sampled quantity. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    /**
     * Record `n` identical samples of `v` in one call (the event-driven
     * schedulers batch the samples of skipped cycles). For the
     * integer-valued quantities the machines sample, the result is
     * bit-identical to calling sample(v) n times.
     */
    void
    sample(double v, std::uint64_t n)
    {
        if (n == 0)
            return;
        sum_ += v * static_cast<double>(n);
        count_ += n;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    /** Fold another accumulator's samples into this one. Exact for the
     *  integer-valued quantities the machines sample (sums stay below
     *  2^53), so merging per-shard accumulators in any order matches
     *  sequential sampling bit-for-bit. */
    void
    merge(const Accumulator &other)
    {
        sum_ += other.sum_;
        count_ += other.count_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    /** Reinstate a checkpointed accumulator from its public getters.
     *  An empty accumulator (count == 0) restores to the pristine
     *  state, reinstating the min/max sentinels the getters hide. */
    void
    restore(double sum, std::uint64_t count, double min, double max)
    {
        reset();
        if (count == 0)
            return;
        sum_ = sum;
        count_ = count;
        min_ = min;
        max_ = max;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bin-width histogram; samples beyond the last bin saturate. */
class Histogram
{
  public:
    /**
     * @param bin_width width of each bin (must be > 0)
     * @param num_bins  number of bins; values >= bin_width*num_bins
     *                  land in the final bin
     */
    explicit Histogram(double bin_width = 1.0, std::size_t num_bins = 64)
        : binWidth_(bin_width), invBinWidth_(1.0 / bin_width),
          bins_(num_bins, 0)
    {
        SIM_ASSERT(bin_width > 0.0);
        SIM_ASSERT(num_bins > 0);
    }

    void
    sample(double v)
    {
        sample(v, 1);
    }

    /** Record `n` identical samples of `v` (batched skip-ahead).
     *  Negative samples are counted as underflow, not folded into
     *  bin 0 (they would silently distort the distribution). They
     *  still contribute to summary(). */
    void
    sample(double v, std::uint64_t n)
    {
        if (n == 0)
            return;
        acc_.sample(v, n);
        if (v < 0.0) {
            underflow_ += n;
            return;
        }
        // Multiply by the precomputed reciprocal: sample() sits on the
        // machines' per-fire path and a divide would dominate it.
        std::size_t idx = static_cast<std::size_t>(v * invBinWidth_);
        if (idx >= bins_.size()) {
            // Saturating into the last bin keeps the bin array and the
            // quantile estimate unchanged, but the saturation count is
            // tracked so merges and dumps never silently launder
            // out-of-range mass into an ordinary bin.
            idx = bins_.size() - 1;
            overflow_ += n;
        }
        bins_[idx] += n;
    }

    /** Fold another histogram into this one; used to combine per-shard
     *  histograms after a parallel run. An empty `other` merges as a
     *  no-op whatever its geometry; merging real mass into an empty
     *  histogram adopts the source geometry (a default-constructed
     *  shard histogram must not assert away — or drop — the
     *  underflow/overflow counts of the populated side). */
    void
    merge(const Histogram &other)
    {
        if (other.acc_.count() == 0)
            return;
        if (acc_.count() == 0 &&
            (other.bins_.size() != bins_.size() ||
             other.binWidth_ != binWidth_))
        {
            binWidth_ = other.binWidth_;
            invBinWidth_ = other.invBinWidth_;
            bins_.assign(other.bins_.size(), 0);
        }
        SIM_ASSERT_MSG(other.bins_.size() == bins_.size() &&
                           other.binWidth_ == binWidth_,
                       "merging histograms with different geometry");
        for (std::size_t i = 0; i < bins_.size(); ++i)
            bins_[i] += other.bins_[i];
        underflow_ += other.underflow_;
        overflow_ += other.overflow_;
        acc_.merge(other.acc_);
    }

    const std::vector<std::uint64_t> &bins() const { return bins_; }
    /** Samples below 0, kept out of the bins. */
    std::uint64_t underflow() const { return underflow_; }
    /** Samples at/beyond the last bin edge (folded into the last bin
     *  for the quantile estimate, but counted here). */
    std::uint64_t overflow() const { return overflow_; }
    double binWidth() const { return binWidth_; }
    const Accumulator &summary() const { return acc_; }

    /** Smallest sample value at or below which fraction q of samples
     *  fall, estimated from bin boundaries. */
    double
    quantile(double q) const
    {
        SIM_ASSERT(q >= 0.0 && q <= 1.0);
        const std::uint64_t total = acc_.count();
        if (total == 0)
            return 0.0;
        const double target = q * static_cast<double>(total);
        // Underflow samples are the lowest-valued mass; they count
        // toward the target before bin 0 is reached.
        double running = static_cast<double>(underflow_);
        if (running >= target)
            return 0.0;
        for (std::size_t i = 0; i < bins_.size(); ++i) {
            running += static_cast<double>(bins_[i]);
            if (running >= target)
                return static_cast<double>(i + 1) * binWidth_;
        }
        return static_cast<double>(bins_.size()) * binWidth_;
    }

    /** The quantiles dumpJson reports (tail-latency set by default).
     *  Values must lie in [0, 1]; the keys follow the percentile
     *  convention (0.999 -> "p999"). */
    static constexpr double kDefaultQuantiles[] = {0.5, 0.9, 0.99,
                                                   0.999};

    /** One JSON object: bin array, underflow, summary moments, and
     *  one "pNN" key per requested quantile. */
    void
    dumpJson(std::ostream &os,
             const std::vector<double> &quantiles = {
                 std::begin(kDefaultQuantiles),
                 std::end(kDefaultQuantiles)}) const
    {
        os << "{\"binWidth\":";
        detail::jsonNumber(os, binWidth_);
        os << ",\"underflow\":" << underflow_
           << ",\"overflow\":" << overflow_ << ",\"count\":"
           << acc_.count() << ",\"mean\":";
        detail::jsonNumber(os, acc_.mean());
        os << ",\"min\":";
        detail::jsonNumber(os, acc_.min());
        os << ",\"max\":";
        detail::jsonNumber(os, acc_.max());
        for (const double q : quantiles) {
            os << ",\"" << detail::quantileKey(q) << "\":";
            detail::jsonNumber(os, quantile(q));
        }
        os << ",\"bins\":[";
        for (std::size_t i = 0; i < bins_.size(); ++i)
            os << (i ? "," : "") << bins_[i];
        os << "]}";
    }

    /** Drop all recorded samples, keeping the bin geometry (and the
     *  bin array's storage) so a reused machine re-records into the
     *  same shape it was constructed with. */
    void
    reset()
    {
        std::fill(bins_.begin(), bins_.end(), 0);
        underflow_ = 0;
        overflow_ = 0;
        acc_.reset();
    }

    /** Reinstate a checkpointed histogram. The geometry comes from
     *  the constructor (it is configuration, not run state), so the
     *  restored bin array must match the constructed shape — callers
     *  validate counts read from untrusted bytes before this. */
    void
    restore(const std::vector<std::uint64_t> &bins,
            std::uint64_t underflow, std::uint64_t overflow,
            const Accumulator &acc)
    {
        SIM_ASSERT_MSG(bins.size() == bins_.size(),
                       "histogram restore with mismatched geometry");
        bins_ = bins;
        underflow_ = underflow;
        overflow_ = overflow;
        acc_ = acc;
    }

  private:
    double binWidth_;
    double invBinWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    Accumulator acc_;
};

/** Checkpoint codecs. W/R are snapshot writer/reader types (see
 *  common/snapshot.hh); keeping these as templates means stats.hh
 *  stays free of the snapshot dependency, and user-defined types
 *  compose by providing their own ADL overloads. */
template <typename W>
void
snapSave(W &w, const Counter &c)
{
    w.u64(c.value());
}

template <typename R>
void
snapLoad(R &r, Counter &c)
{
    c.reset();
    c.inc(r.u64());
}

template <typename W>
void
snapSave(W &w, const Accumulator &a)
{
    w.f64(a.sum());
    w.u64(a.count());
    w.f64(a.min());
    w.f64(a.max());
}

template <typename R>
void
snapLoad(R &r, Accumulator &a)
{
    const double sum = r.f64();
    const std::uint64_t count = r.u64();
    const double mn = r.f64();
    const double mx = r.f64();
    a.restore(sum, count, mn, mx);
}

template <typename W>
void
snapSave(W &w, const Histogram &h)
{
    snapSave(w, h.summary());
    w.u64(h.underflow());
    w.u64(h.overflow());
    w.u64(h.bins().size());
    for (const std::uint64_t b : h.bins())
        w.u64(b);
}

template <typename R>
void
snapLoad(R &r, Histogram &h)
{
    Accumulator acc;
    snapLoad(r, acc);
    const std::uint64_t underflow = r.u64();
    const std::uint64_t overflow = r.u64();
    const std::uint64_t n = r.u64();
    if (n != h.bins().size())
        r.fail("histogram bin count does not match configuration");
    std::vector<std::uint64_t> bins;
    bins.reserve(h.bins().size());
    for (std::uint64_t i = 0; i < n; ++i)
        bins.push_back(r.u64());
    h.restore(bins, underflow, overflow, acc);
}

/** A named bag of scalar statistics, dumpable for reports. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void set(const std::string &key, double v) { scalars_[key] = v; }

    /** Whether a statistic named `key` has been set. */
    bool
    has(const std::string &key) const
    {
        return scalars_.find(key) != scalars_.end();
    }

    /** Value of an existing statistic. Asking for a key that was never
     *  set is a report bug (most often a typo) and panics with the
     *  offending name rather than silently reading 0. */
    double
    get(const std::string &key) const
    {
        auto it = scalars_.find(key);
        SIM_ASSERT_MSG(it != scalars_.end(),
                       "stat group '{}' has no statistic named '{}'",
                       name_, key);
        return it->second;
    }

    const std::string &name() const { return name_; }
    const std::map<std::string, double> &scalars() const { return scalars_; }

    void
    dump(std::ostream &os) const
    {
        for (const auto &[key, value] : scalars_)
            os << name_ << "." << key << " = " << value << "\n";
    }

    /** One JSON object mapping each statistic name to its value. */
    void
    dumpJson(std::ostream &os) const
    {
        os << '{';
        bool first = true;
        for (const auto &[key, value] : scalars_) {
            os << (first ? "" : ",") << '"' << key << "\":";
            detail::jsonNumber(os, value);
            first = false;
        }
        os << '}';
    }

  private:
    std::string name_;
    std::map<std::string, double> scalars_;
};

} // namespace sim

#endif // TTDA_COMMON_STATS_HH

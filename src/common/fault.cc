#include "common/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/format.hh"
#include "common/logging.hh"

namespace sim
{
namespace fault
{

namespace
{

/** "drop=0.01" -> ("drop", "0.01"); panics when '=' is missing. */
std::pair<std::string, std::string>
splitKeyValue(const std::string &item)
{
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0)
        sim::panic("fault plan: expected key=value, got '{}'", item);
    return {item.substr(0, eq), item.substr(eq + 1)};
}

double
parseRate(const std::string &key, const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0)
        sim::panic("fault plan: {}= wants a rate in [0,1], got '{}'",
                   key, text);
    return v;
}

std::uint64_t
parseNumber(const std::string &key, const std::string &text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        sim::panic("fault plan: {} wants an integer, got '{}'", key,
                   text);
    return v;
}

std::uint32_t
parseNode(const std::string &key, const std::string &text)
{
    if (text == "*")
        return Event::kAny;
    return static_cast<std::uint32_t>(parseNumber(key, text));
}

/** "linkdown@FROM-TO[:SRC>DST]" / "pestall@FROM-TO:PE" /
 *  "memstall@FROM-TO:MODULE" / "dropspike@FROM-TO:RATE" after the
 *  '@'. */
Event
parseWindow(Event::Kind kind, const std::string &key,
            const std::string &text)
{
    Event ev;
    ev.kind = kind;
    std::string window = text;
    std::string target;
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        window = text.substr(0, colon);
        target = text.substr(colon + 1);
    }
    const std::size_t dash = window.find('-');
    if (dash == std::string::npos)
        sim::panic("fault plan: {}@ wants FROM-TO, got '{}'", key,
                   text);
    ev.from = parseNumber(key, window.substr(0, dash));
    ev.to = parseNumber(key, window.substr(dash + 1));
    if (ev.to < ev.from)
        sim::panic("fault plan: {}@{}-{} window ends before it starts",
                   key, ev.from, ev.to);
    if (kind == Event::Kind::LinkDown) {
        if (!target.empty()) {
            const std::size_t gt = target.find('>');
            if (gt == std::string::npos)
                sim::panic("fault plan: linkdown target wants SRC>DST, "
                           "got '{}'", target);
            ev.a = parseNode(key, target.substr(0, gt));
            ev.b = parseNode(key, target.substr(gt + 1));
        }
    } else if (kind == Event::Kind::DropSpike) {
        if (target.empty())
            sim::panic("fault plan: {}@ needs a :RATE", key);
        // The rate rides in the integer payload field, scaled by 1e6
        // (micro-probability) so Event stays a plain value type.
        ev.a = static_cast<std::uint32_t>(
            parseRate(key, target) * 1e6 + 0.5);
    } else {
        if (target.empty())
            sim::panic("fault plan: {}@ needs a :TARGET", key);
        ev.a = parseNode(key, target);
    }
    return ev;
}

bool
covers(const Event &ev, sim::Cycle c)
{
    return c >= ev.from && c <= ev.to;
}

} // namespace

FaultPlan
FaultPlan::defaultLossy(std::uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.dropRate = 0.01;
    plan.dupRate = 0.005;
    plan.corruptRate = 0.001;
    plan.delayRate = 0.01;
    plan.delaySpike = 16;
    return plan;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t at = item.find('@');
        if (at != std::string::npos) {
            const std::string key = item.substr(0, at);
            const std::string rest = item.substr(at + 1);
            if (key == "linkdown")
                plan.events.push_back(
                    parseWindow(Event::Kind::LinkDown, key, rest));
            else if (key == "pestall")
                plan.events.push_back(
                    parseWindow(Event::Kind::PeStall, key, rest));
            else if (key == "memstall")
                plan.events.push_back(
                    parseWindow(Event::Kind::MemStall, key, rest));
            else if (key == "dropspike")
                plan.events.push_back(
                    parseWindow(Event::Kind::DropSpike, key, rest));
            else
                sim::panic("fault plan: unknown event '{}'", key);
            continue;
        }
        auto [key, value] = splitKeyValue(item);
        if (key == "seed")
            plan.seed = parseNumber(key, value);
        else if (key == "drop")
            plan.dropRate = parseRate(key, value);
        else if (key == "dup")
            plan.dupRate = parseRate(key, value);
        else if (key == "corrupt")
            plan.corruptRate = parseRate(key, value);
        else if (key == "delay")
            plan.delayRate = parseRate(key, value);
        else if (key == "spike")
            plan.delaySpike = parseNumber(key, value);
        else
            sim::panic("fault plan: unknown key '{}'", key);
    }
    return plan;
}

std::string
FaultPlan::summary() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    if (dropRate > 0.0)
        os << ",drop=" << dropRate;
    if (dupRate > 0.0)
        os << ",dup=" << dupRate;
    if (corruptRate > 0.0)
        os << ",corrupt=" << corruptRate;
    if (delayRate > 0.0)
        os << ",delay=" << delayRate << ",spike=" << delaySpike;
    for (const Event &ev : events) {
        switch (ev.kind) {
          case Event::Kind::LinkDown:
            os << ",linkdown@" << ev.from << "-" << ev.to;
            if (ev.a != Event::kAny || ev.b != Event::kAny) {
                os << ":";
                if (ev.a == Event::kAny)
                    os << "*";
                else
                    os << ev.a;
                os << ">";
                if (ev.b == Event::kAny)
                    os << "*";
                else
                    os << ev.b;
            }
            break;
          case Event::Kind::PeStall:
            os << ",pestall@" << ev.from << "-" << ev.to << ":"
               << ev.a;
            break;
          case Event::Kind::MemStall:
            os << ",memstall@" << ev.from << "-" << ev.to << ":"
               << ev.a;
            break;
          case Event::Kind::DropSpike:
            os << ",dropspike@" << ev.from << "-" << ev.to << ":"
               << ev.a / 1e6;
            break;
        }
    }
    return os.str();
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
    for (const Event &ev : plan_.events) {
        switch (ev.kind) {
          case Event::Kind::LinkDown:
            linkDowns_.push_back(ev);
            break;
          case Event::Kind::PeStall:
            peStalls_.push_back(ev);
            break;
          case Event::Kind::MemStall:
            memStalls_.push_back(ev);
            break;
          case Event::Kind::DropSpike:
            dropSpikes_.push_back(ev);
            break;
        }
    }
    // A drop-spike window counts as a configured rate: the stream must
    // advance once per packet even outside the window, or entering it
    // would shift every later decision (the determinism contract).
    anyRate_ = plan_.dropRate > 0.0 || plan_.dupRate > 0.0 ||
               plan_.corruptRate > 0.0 || plan_.delayRate > 0.0 ||
               !dropSpikes_.empty();
}

double
FaultInjector::effectiveDropRate(sim::Cycle c) const
{
    double rate = plan_.dropRate;
    for (const Event &ev : dropSpikes_)
        if (covers(ev, c))
            rate = std::max(rate, ev.a / 1e6);
    return rate;
}

bool
FaultInjector::linkDown(sim::Cycle c, sim::NodeId src,
                        sim::NodeId dst) const
{
    for (const Event &ev : linkDowns_) {
        if (!covers(ev, c))
            continue;
        if (ev.a != Event::kAny && ev.a != src)
            continue;
        if (ev.b != Event::kAny && ev.b != dst)
            continue;
        return true;
    }
    return false;
}

PacketFate
FaultInjector::onPacket(sim::Cycle now, sim::NodeId src,
                        sim::NodeId dst)
{
    PacketFate fate;
    if (linkDown(now, src, dst)) {
        fate.action = PacketFate::Action::Drop;
        fate.scheduled = true;
        ++stats_.linkDownDrops;
        return fate;
    }
    if (!anyRate_)
        return fate;
    // One draw per packet: the nth delivery always sees the nth value
    // of the stream, independent of which fault classes are enabled
    // elsewhere in the window (the determinism contract).
    ++stats_.decisions;
    const double u = rng_.uniform();
    double threshold = effectiveDropRate(now);
    if (u < threshold) {
        fate.action = PacketFate::Action::Drop;
        ++stats_.drops;
        return fate;
    }
    threshold += plan_.dupRate;
    if (u < threshold) {
        fate.action = PacketFate::Action::Duplicate;
        ++stats_.duplicates;
        return fate;
    }
    threshold += plan_.corruptRate;
    if (u < threshold) {
        fate.action = PacketFate::Action::Corrupt;
        ++stats_.corrupts;
        return fate;
    }
    threshold += plan_.delayRate;
    if (u < threshold) {
        fate.action = PacketFate::Action::Delay;
        fate.extraDelay = plan_.delaySpike;
        ++stats_.delays;
        return fate;
    }
    return fate;
}

bool
FaultInjector::peStalled(sim::Cycle c, std::uint32_t pe) const
{
    for (const Event &ev : peStalls_)
        if (covers(ev, c) && (ev.a == Event::kAny || ev.a == pe))
            return true;
    return false;
}

sim::Cycle
FaultInjector::peResume(sim::Cycle c, std::uint32_t pe) const
{
    // Windows may abut or overlap; chase the end of every window that
    // covers the candidate until none does.
    bool moved = true;
    while (moved) {
        moved = false;
        for (const Event &ev : peStalls_) {
            if (covers(ev, c) && (ev.a == Event::kAny || ev.a == pe)) {
                c = ev.to + 1;
                moved = true;
            }
        }
    }
    return c;
}

bool
FaultInjector::memStalled(sim::Cycle c, std::uint32_t m) const
{
    for (const Event &ev : memStalls_)
        if (covers(ev, c) && (ev.a == Event::kAny || ev.a == m))
            return true;
    return false;
}

sim::Cycle
FaultInjector::memResume(sim::Cycle c, std::uint32_t m) const
{
    bool moved = true;
    while (moved) {
        moved = false;
        for (const Event &ev : memStalls_) {
            if (covers(ev, c) && (ev.a == Event::kAny || ev.a == m)) {
                c = ev.to + 1;
                moved = true;
            }
        }
    }
    return c;
}

} // namespace fault
} // namespace sim

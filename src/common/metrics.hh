/**
 * @file
 * MetricsRecorder: a deterministic, cycle-driven time-series sampler.
 *
 * The stats primitives (stats.hh) export end-of-run aggregates; the
 * tracer (trace.hh) exports per-event streams. This sits between the
 * two: named scalar *series* sampled every N simulated cycles, so a
 * run's dynamics — occupancy ramps, throughput plateaus, backlog
 * spikes under faults — are visible over time without drowning in
 * per-token events.
 *
 * Determinism: the machines sample at the serial commit point of the
 * tick (after phase B and network receive), where every value is
 * already bit-identical across thread counts, so the recorded series
 * — timestamps and values — are bit-identical for any --threads.
 *
 * Bounded memory: when the row store reaches its capacity, every
 * odd-indexed row is dropped and the sampling interval doubles
 * (power-of-two decimation). The first row always survives, the
 * final row is appended by finalize(), and samplesRecorded() keeps
 * the exact pre-decimation count, so long runs degrade resolution
 * rather than growing without bound.
 *
 * Two series kinds:
 *  - gauge: an instantaneous level (queue depth, WM occupancy);
 *  - rate:  a cumulative counter; exporters derive per-cycle rates
 *    from row deltas. Storing the cumulative value keeps decimation
 *    exact: the counter reading at a surviving timestamp is still
 *    the true reading, whatever rows were dropped between.
 */

#ifndef TTDA_COMMON_METRICS_HH
#define TTDA_COMMON_METRICS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace sim
{

class Tracer;

class MetricsRecorder
{
  public:
    using SeriesId = std::uint32_t;

    enum class Kind : std::uint8_t
    {
        Gauge, //!< instantaneous level
        Rate,  //!< cumulative counter (exporters emit deltas)
    };

    /**
     * @param interval sampling period in simulated cycles (>= 1)
     * @param capacity max retained rows (>= 2); reaching it halves
     *                 the rows and doubles the effective interval
     */
    explicit MetricsRecorder(Cycle interval = 1024,
                             std::size_t capacity = 4096);

    /** Register (or look up) a gauge series. Idempotent by name; the
     *  kind of an existing series is not changed. */
    SeriesId gauge(std::string_view name);

    /** Register (or look up) a cumulative-counter series. */
    SeriesId rate(std::string_view name);

    /** Stage the current value of one series; the next record() call
     *  snapshots every staged value into a row. */
    void
    set(SeriesId id, double v)
    {
        series_[id].current = v;
    }

    /** True when the cycle about to be committed crosses the next
     *  sample boundary. The hot-loop test: one compare. */
    bool due(Cycle now) const { return now >= nextDue_; }

    /** Append one row stamped `now` (the caller checked due(); an
     *  early row is legal — timestamps are explicit). Rows must be
     *  appended in nondecreasing cycle order. */
    void record(Cycle now);

    /** Append a final row stamped `now` unless the last row already
     *  carries that stamp; call once when the run quiesces so the
     *  series always ends at the run's end state. */
    void finalize(Cycle now);

    /** Drop all rows (series registrations survive) and rewind the
     *  interval/decimation state; lets one recorder serve several
     *  runs in sequence. */
    void reset();

    // ---- accessors --------------------------------------------------
    std::size_t numSeries() const { return series_.size(); }
    std::size_t numRows() const { return times_.size(); }
    /** Exact number of rows ever recorded, including decimated ones. */
    std::uint64_t samplesRecorded() const { return samplesRecorded_; }
    Cycle interval() const { return interval_; }
    /** Current period after decimation doublings. */
    Cycle effectiveInterval() const { return effInterval_; }
    Cycle rowCycle(std::size_t row) const { return times_[row]; }
    double
    value(SeriesId id, std::size_t row) const
    {
        return series_[id].values[row];
    }
    const std::string &name(SeriesId id) const
    {
        return series_[id].name;
    }
    Kind kind(SeriesId id) const { return series_[id].kind; }

    // ---- exporters --------------------------------------------------

    /** One JSON document: sampling parameters, the cycle axis, and
     *  every series with its kind and raw row values. */
    void dumpJson(std::ostream &os) const;

    /** Spreadsheet-style CSV: a `cycle` column then one column per
     *  series (raw values; rates stay cumulative). */
    void dumpCsv(std::ostream &os) const;

    /** Emit every row as Perfetto counter-track samples under
     *  process `pid` (category `sched`). Gauges emit their level;
     *  rates emit the per-cycle rate over the preceding row gap, so
     *  the track reads as throughput rather than a ramp. */
    void exportCounters(Tracer &tracer, std::uint32_t pid) const;

  private:
    struct Series
    {
        std::string name;
        Kind kind = Kind::Gauge;
        double current = 0.0;
        std::vector<double> values; //!< one per retained row
    };

    SeriesId registerSeries(std::string_view name, Kind kind);

    /** Drop odd-indexed rows, double the effective interval. */
    void decimate();

    /** Per-cycle rate of series `s` over the gap ending at `row`. */
    double rateAt(const Series &s, std::size_t row) const;

    Cycle interval_;
    Cycle effInterval_;
    std::size_t capacity_;
    Cycle nextDue_ = 0;
    std::uint64_t samplesRecorded_ = 0;
    std::vector<Cycle> times_;
    std::vector<Series> series_;
};

} // namespace sim

#endif // TTDA_COMMON_METRICS_HH

/**
 * @file
 * Event tracing for the machine models: a streaming Chrome
 * trace-event JSON writer behind a per-category enable bitmask.
 *
 * The emitted file is the Trace Event Format consumed by Perfetto
 * (https://ui.perfetto.dev) and chrome://tracing: one JSON object with
 * a `traceEvents` array. Tracks are addressed by (pid, tid) pairs —
 * the machines name a process per PE / core and a thread per pipeline
 * stage, so a trace opens as one swim-lane per stage. Timestamps are
 * microseconds in the format; we map one simulated cycle to one
 * microsecond, so Perfetto's time axis reads directly in cycles.
 *
 * Cost model: every emission site is wrapped in SIM_TRACE(...), which
 * tests a raw pointer before evaluating any argument — with tracing
 * disabled (the default: MachineConfig::tracer == nullptr) the whole
 * site is one branch on a null pointer and no argument formatting.
 */

#ifndef TTDA_COMMON_TRACE_HH
#define TTDA_COMMON_TRACE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace sim
{

/** Streaming Chrome-trace-event writer with category filtering. */
class Tracer
{
  public:
    /** Event categories, one bit each; combine with |. */
    enum Category : std::uint32_t
    {
        Wm = 1u << 0,    //!< waiting-matching enqueue / match
        Fire = 1u << 1,  //!< instruction fetch / ALU fire
        Net = 1u << 2,   //!< network inject / deliver
        Mem = 1u << 3,   //!< memory module request service
        Istr = 1u << 4,  //!< I-structure read/write/defer/serve
        Sched = 1u << 5, //!< output section, context switches, results
        All = (1u << 6) - 1,
    };

    Tracer() = default;
    ~Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Start writing to `path`; fatal() if the file cannot be opened. */
    void open(const std::string &path, std::uint32_t mask = All);

    /** Start writing to a caller-owned stream (tests). */
    void attach(std::ostream &os, std::uint32_t mask = All);

    /** Write the JSON footer and stop. Idempotent; the destructor
     *  calls it, so traces are valid even on early exits. */
    void close();

    bool active() const { return sink_ != nullptr; }

    /** True when any of `cats` is enabled; false when closed. This is
     *  the only check on the hot path — mask_ is 0 while inactive. */
    bool wants(std::uint32_t cats) const { return (mask_ & cats) != 0; }

    std::uint32_t mask() const { return mask_; }
    std::uint64_t eventCount() const { return events_; }

    /** Parse "wm,fire,istr" / "all" into a category mask; empty means
     *  All. Unknown names are a fatal() configuration error. */
    static std::uint32_t parseCategories(std::string_view spec);

    static const char *categoryName(Category cat);

    // ---- track naming (metadata events; ignore the category mask) --
    void processName(std::uint32_t pid, std::string_view name);
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    std::string_view name);

    // ---- event emitters --------------------------------------------
    // `args`, when non-empty, must be a well-formed JSON object body
    // ("\"k\":1,\"t\":\"x\"" — no surrounding braces); it is emitted
    // verbatim. Call through SIM_TRACE so the argument strings are
    // only built when the category is enabled.

    /** A span of `dur` cycles starting at `ts` (ph "X"). */
    void complete(Category cat, std::uint32_t pid, std::uint32_t tid,
                  std::string_view name, Cycle ts, Cycle dur,
                  std::string_view args = {});

    /** A zero-duration marker at `ts` (ph "i", thread scope). */
    void instant(Category cat, std::uint32_t pid, std::uint32_t tid,
                 std::string_view name, Cycle ts,
                 std::string_view args = {});

    /** A sampled counter track value at `ts` (ph "C"). */
    void counter(Category cat, std::uint32_t pid, std::string_view name,
                 Cycle ts, double value);

    // ---- shard support ---------------------------------------------
    // TraceShard renders event lines off-thread with the formatX
    // helpers and splices them into the stream with commitLine(); the
    // bytes written are identical to the direct emitters above.

    /** Append one pre-rendered event line to the stream. */
    void commitLine(const std::string &line);

    static void formatComplete(std::string &out, Category cat,
                               std::uint32_t pid, std::uint32_t tid,
                               std::string_view name, Cycle ts,
                               Cycle dur, std::string_view args);
    static void formatInstant(std::string &out, Category cat,
                              std::uint32_t pid, std::uint32_t tid,
                              std::string_view name, Cycle ts,
                              std::string_view args);
    static void formatCounter(std::string &out, Category cat,
                              std::uint32_t pid, std::string_view name,
                              Cycle ts, double value);

  private:
    void begin(std::ostream &os, std::uint32_t mask);
    void commit(); //!< write buf_ as the next traceEvents element

    std::ostream *sink_ = nullptr;
    std::unique_ptr<std::ofstream> file_; //!< owned sink for open()
    std::uint32_t mask_ = 0;
    bool first_ = true;
    std::uint64_t events_ = 0;
    std::string buf_; //!< reused per-event line buffer
};

/**
 * Per-thread staging front end for a Tracer.
 *
 * The parallel engine's phase A runs on worker threads, where writing
 * to the shared Tracer stream would race. Each shard owns a TraceShard
 * instead: in buffered mode the emitters render the event line locally
 * (using the same formatters as Tracer, so the bytes are identical) and
 * flush() later splices the lines into the parent stream in shard-index
 * order on the committing thread. In pass-through mode (the sequential
 * engine) every emitter forwards immediately, so single-threaded traces
 * are byte-for-byte what the pre-shard tracer produced.
 *
 * The emitter signatures match Tracer's, so SIM_TRACE works with either
 * a Tracer* or a TraceShard*.
 */
class TraceShard
{
  public:
    TraceShard() = default;

    /** Bind to `parent`; `buffered` selects staging vs pass-through. */
    void bind(Tracer *parent, bool buffered)
    {
        parent_ = parent;
        buffered_ = buffered;
    }

    Tracer *parent() const { return parent_; }

    bool wants(std::uint32_t cats) const
    {
        return parent_ != nullptr && parent_->wants(cats);
    }

    void complete(Tracer::Category cat, std::uint32_t pid,
                  std::uint32_t tid, std::string_view name, Cycle ts,
                  Cycle dur, std::string_view args = {});
    void instant(Tracer::Category cat, std::uint32_t pid,
                 std::uint32_t tid, std::string_view name, Cycle ts,
                 std::string_view args = {});
    void counter(Tracer::Category cat, std::uint32_t pid,
                 std::string_view name, Cycle ts, double value);

    bool empty() const { return lines_.empty(); }

    /** Replay buffered lines into the parent, in emission order. Only
     *  call from the committing thread. */
    void flush();

  private:
    Tracer *parent_ = nullptr;
    bool buffered_ = false;
    std::vector<std::string> lines_;
};

/**
 * Guarded trace emission: `tracer` is a sim::Tracer* or a
 * sim::TraceShard*, `category` a bare Category name (Wm, Fire, ...),
 * `method` one of the emitters (complete, instant, counter), and the
 * remaining arguments everything after the leading Category parameter.
 * The variadic arguments — including any sim::format(...) building the
 * args string — are not evaluated unless the tracer is non-null and
 * the category enabled.
 */
#define SIM_TRACE(tracer, category, method, ...)                        \
    do {                                                                \
        auto *simTraceT_ = (tracer);                                    \
        if (simTraceT_ &&                                               \
            simTraceT_->wants(::sim::Tracer::category)) {               \
            simTraceT_->method(::sim::Tracer::category, __VA_ARGS__);   \
        }                                                               \
    } while (0)

} // namespace sim

#endif // TTDA_COMMON_TRACE_HH

#include "common/fleet.hh"

#include "common/logging.hh"

namespace sim
{

JobQueue::JobQueue(std::size_t jobs, std::size_t shards)
    : jobs_(jobs)
{
    std::size_t s = shards == 0 ? 1 : shards;
    if (jobs_ > 0 && s > jobs_)
        s = jobs_;
    if (s < 1)
        s = 1;
    shards_ = std::vector<Lane>(s);
    // Lane l owns jobs l, l+s, l+2s, ...: ceil((jobs - l) / s) of them.
    for (std::size_t l = 0; l < s; ++l)
        shards_[l].count = jobs_ > l ? (jobs_ - l + s - 1) / s : 0;
}

std::optional<std::size_t>
JobQueue::pop(unsigned worker)
{
    const std::size_t s = shards_.size();
    const std::size_t home = worker % s;
    for (std::size_t probe = 0; probe < s; ++probe) {
        const std::size_t lane = (home + probe) % s;
        Lane &ln = shards_[lane];
        // Cheap dry check before touching the cursor: keeps the steal
        // scan from bumping every lane's counter on each empty pass.
        if (ln.cursor.load(std::memory_order_relaxed) >= ln.count)
            continue;
        const std::size_t pos =
            ln.cursor.fetch_add(1, std::memory_order_relaxed);
        if (pos >= ln.count)
            continue; // lost the race; lane went dry under us
        if (probe != 0)
            steals_.fetch_add(1, std::memory_order_relaxed);
        return lane + pos * s;
    }
    return std::nullopt;
}

CompletionRing::CompletionRing(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity)
{
}

void
CompletionRing::push(std::uint32_t job, std::uint32_t worker)
{
    const std::size_t slot =
        tail_.fetch_add(1, std::memory_order_acq_rel);
    SIM_ASSERT_MSG(slot < ring_.size(),
                   "completion ring overflow: slot {} capacity {}",
                   slot, ring_.size());
    ring_[slot] = Entry{job, worker};
}

Fleet::Fleet(Config cfg)
    : cfg_(cfg),
      pool_(cfg.workers < 1 ? 1 : cfg.workers, cfg.spinBudget)
{
}

void
Fleet::run(std::size_t numJobs,
           const std::function<void(unsigned, std::size_t)> &runJob)
{
    const std::size_t lanes =
        cfg_.queueShards == 0 ? pool_.size() : cfg_.queueShards;
    queue_ = std::make_unique<JobQueue>(numJobs, lanes);
    ring_ = std::make_unique<CompletionRing>(numJobs);
    jobsPerWorker_.assign(pool_.size(), 0);

    pool_.run([&](unsigned worker) {
        std::uint64_t ran = 0;
        while (auto job = queue_->pop(worker)) {
            runJob(worker, *job);
            ring_->push(static_cast<std::uint32_t>(*job), worker);
            ++ran;
        }
        // Per-worker slot: no synchronization needed beyond the
        // pool's end-of-run barrier.
        jobsPerWorker_[worker] = ran;
    });
}

} // namespace sim

/**
 * @file
 * A persistent worker pool for deterministic parallel simulation.
 *
 * The machines shard their processing elements across host threads and
 * run each simulated cycle as a two-phase tick: phase A computes every
 * shard's cycle into thread-local staging buffers, then — after the
 * pool's barrier — phase B commits the buffered effects in shard-index
 * order on the caller's thread. The pool provides exactly the primitive
 * that shape needs: run(fn) executes fn(shard) once per shard, with the
 * caller participating as shard 0, and returns only when every shard
 * has finished.
 *
 * Design points:
 *  - Workers are created once and parked between ticks; a tick costs
 *    two generation-counted barrier crossings, not thread creation.
 *  - Waiting spins briefly and then yields; the pool targets machines
 *    where every hardware thread is running a shard, so sleeping on a
 *    condition variable per tick would dominate short cycles.
 *  - Exceptions thrown by shard functions are captured and the
 *    lowest-indexed shard's exception is rethrown from run() after the
 *    barrier, so a failing cycle cannot leave workers running.
 *  - The destructor joins all workers; it must not be called from a
 *    shard function.
 */

#ifndef TTDA_COMMON_PARALLEL_HH
#define TTDA_COMMON_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace sim
{

/** Persistent thread team executing one function per shard. */
class WorkerPool
{
  public:
    /**
     * @param threads total shard count, including the calling thread;
     *                clamped below by 1. `threads - 1` host threads are
     *                spawned.
     */
    explicit WorkerPool(unsigned threads);

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    ~WorkerPool();

    /** Shard count (spawned workers + the caller). */
    unsigned size() const { return threads_; }

    /**
     * Run fn(shard) for every shard in [0, size()), the caller
     * executing shard 0, and block until all shards complete. If any
     * invocation threw, the exception of the lowest-indexed throwing
     * shard is rethrown here (the others are discarded).
     *
     * Not reentrant: must not be called from inside a shard function.
     */
    void run(const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned shard);
    void runShard(unsigned shard);

    /** Spin-then-yield wait until `flag` reaches `target`. */
    static void await(const std::atomic<std::uint64_t> &flag,
                      std::uint64_t target);

    unsigned threads_;
    std::vector<std::thread> workers_;

    // Barrier state: epoch_ advances to publish a new task to the
    // workers; done_ counts shards that finished the current epoch.
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint64_t> done_{0};
    std::atomic<bool> stop_{false};
    const std::function<void(unsigned)> *task_ = nullptr;

    std::vector<std::exception_ptr> errors_;
};

} // namespace sim

#endif // TTDA_COMMON_PARALLEL_HH

/**
 * @file
 * A persistent worker pool for deterministic parallel simulation.
 *
 * The machines shard their processing elements across host threads and
 * run each simulated cycle as a two-phase tick: phase A computes every
 * shard's cycle into thread-local staging buffers, then — after the
 * pool's barrier — phase B commits the buffered effects in shard-index
 * order on the caller's thread. The pool provides exactly the primitive
 * that shape needs: run(fn) executes fn(shard) once per shard, with the
 * caller participating as shard 0, and returns only when every shard
 * has finished.
 *
 * Design points:
 *  - Workers are created once and parked between ticks; a tick costs
 *    two generation-counted barrier crossings, not thread creation.
 *  - Waiting spins briefly and then yields; the pool targets machines
 *    where every hardware thread is running a shard, so sleeping on a
 *    condition variable per tick would dominate short cycles.
 *  - The spin budget adapts to the host: when the pool asks for more
 *    shards than the machine has hardware threads (a fleet of
 *    machines nesting intra-machine pools, or a CI container pinned
 *    to one CPU), spinning only steals cycles from the thread that
 *    would let the barrier complete, so oversubscribed pools go
 *    yield-first. `SIM_SPIN_BUDGET` overrides the budget explicitly
 *    (0 = always yield), for experiments and stubborn hosts.
 *  - Exceptions thrown by shard functions are captured and the
 *    lowest-indexed shard's exception is rethrown from run() after the
 *    barrier, so a failing cycle cannot leave workers running.
 *  - The destructor joins all workers; it must not be called from a
 *    shard function.
 */

#ifndef TTDA_COMMON_PARALLEL_HH
#define TTDA_COMMON_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace sim
{

/** Persistent thread team executing one function per shard. */
class WorkerPool
{
  public:
    /**
     * @param threads total shard count, including the calling thread;
     *                clamped below by 1. `threads - 1` host threads are
     *                spawned.
     * @param spinBudget barrier spin iterations before falling back to
     *                yielding; kSpinAuto (the default) resolves to the
     *                SIM_SPIN_BUDGET environment variable when set,
     *                otherwise to 0 (yield immediately) when `threads`
     *                exceeds the hardware concurrency and to
     *                kDefaultSpin on a machine with a core per shard.
     */
    explicit WorkerPool(unsigned threads, int spinBudget = kSpinAuto);

    /** Sentinel: resolve the spin budget from the environment and the
     *  host's core count (see the constructor). */
    static constexpr int kSpinAuto = -1;
    /** Spin iterations used when every shard has a hardware thread. */
    static constexpr int kDefaultSpin = 4096;

    /** The budget this pool resolved to (tests and diagnostics). */
    int spinBudget() const { return spin_; }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    ~WorkerPool();

    /** Shard count (spawned workers + the caller). */
    unsigned size() const { return threads_; }

    /**
     * Run fn(shard) for every shard in [0, size()), the caller
     * executing shard 0, and block until all shards complete. If any
     * invocation threw, the exception of the lowest-indexed throwing
     * shard is rethrown here (the others are discarded).
     *
     * Not reentrant: must not be called from inside a shard function.
     */
    void run(const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned shard);
    void runShard(unsigned shard);

    /** Spin-then-yield wait until `flag` reaches `target`. */
    void await(const std::atomic<std::uint64_t> &flag,
               std::uint64_t target) const;

    unsigned threads_;
    int spin_ = kDefaultSpin;
    std::vector<std::thread> workers_;

    // Barrier state: epoch_ advances to publish a new task to the
    // workers; done_ counts shards that finished the current epoch.
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint64_t> done_{0};
    std::atomic<bool> stop_{false};
    const std::function<void(unsigned)> *task_ = nullptr;

    std::vector<std::exception_ptr> errors_;
};

} // namespace sim

#endif // TTDA_COMMON_PARALLEL_HH

#include "common/snapshot.hh"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>

namespace sim::snapshot
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

void
putU32le(std::ostream &os, std::uint32_t v)
{
    const char b[4] = {static_cast<char>(v),
                       static_cast<char>(v >> 8),
                       static_cast<char>(v >> 16),
                       static_cast<char>(v >> 24)};
    os.write(b, 4);
}

void
putU64le(std::ostream &os, std::uint64_t v)
{
    putU32le(os, static_cast<std::uint32_t>(v));
    putU32le(os, static_cast<std::uint32_t>(v >> 32));
}

} // namespace

std::uint32_t
crc32(const unsigned char *data, std::size_t n)
{
    static const std::array<std::uint32_t, 256> table =
        makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
Writer::finish(std::ostream &os) const
{
    os.write(kMagic, sizeof kMagic);
    putU32le(os, kVersion);
    os.write(reinterpret_cast<const char *>(kEndianTag),
             sizeof kEndianTag);
    putU64le(os, buf_.size());
    os.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    putU32le(os,
             crc32(reinterpret_cast<const unsigned char *>(
                       buf_.data()),
                   buf_.size()));
    if (!os)
        throw Error("snapshot: stream write failed");
}

void
Reader::fail(const char *what)
{
    throw Error(std::string("snapshot: ") + what);
}

Reader::Reader(std::istream &is)
{
    char head[22];
    is.read(head, sizeof head);
    if (is.gcount() != static_cast<std::streamsize>(sizeof head))
        fail("truncated header");
    if (std::memcmp(head, kMagic, sizeof kMagic) != 0)
        fail("bad magic (not a snapshot)");
    const auto *h = reinterpret_cast<const unsigned char *>(head);
    const std::uint32_t version =
        static_cast<std::uint32_t>(h[8]) |
        (static_cast<std::uint32_t>(h[9]) << 8) |
        (static_cast<std::uint32_t>(h[10]) << 16) |
        (static_cast<std::uint32_t>(h[11]) << 24);
    if (version != kVersion)
        fail("unsupported snapshot version");
    if (h[12] != kEndianTag[0] || h[13] != kEndianTag[1])
        fail("unsupported endianness");
    std::uint64_t len = 0;
    for (int i = 7; i >= 0; --i)
        len = (len << 8) | h[14 + i];

    // Read the payload in bounded chunks so a corrupt length fails
    // with "truncated" when the stream ends, instead of attempting a
    // multi-exabyte allocation first.
    constexpr std::uint64_t kChunk = 1u << 20;
    while (buf_.size() < len) {
        const std::uint64_t want =
            std::min<std::uint64_t>(kChunk, len - buf_.size());
        const std::size_t old = buf_.size();
        buf_.resize(old + static_cast<std::size_t>(want));
        is.read(buf_.data() + old,
                static_cast<std::streamsize>(want));
        if (is.gcount() != static_cast<std::streamsize>(want))
            fail("truncated payload");
    }

    char tail[4];
    is.read(tail, sizeof tail);
    if (is.gcount() != static_cast<std::streamsize>(sizeof tail))
        fail("truncated checksum");
    const auto *t = reinterpret_cast<const unsigned char *>(tail);
    const std::uint32_t stored =
        static_cast<std::uint32_t>(t[0]) |
        (static_cast<std::uint32_t>(t[1]) << 8) |
        (static_cast<std::uint32_t>(t[2]) << 16) |
        (static_cast<std::uint32_t>(t[3]) << 24);
    const std::uint32_t actual = crc32(
        reinterpret_cast<const unsigned char *>(buf_.data()),
        buf_.size());
    if (stored != actual)
        fail("payload checksum mismatch (corrupted snapshot)");
}

} // namespace sim::snapshot

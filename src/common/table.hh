/**
 * @file
 * Plain-text table printer used by the benchmark harnesses.
 *
 * Every experiment binary prints its results as an aligned table with a
 * caption naming the paper anchor it reproduces, so bench output reads
 * like the evaluation section of a paper.
 */

#ifndef TTDA_COMMON_TABLE_HH
#define TTDA_COMMON_TABLE_HH

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

namespace sim
{

/** An aligned, plain-text results table. */
class Table
{
  public:
    explicit Table(std::string caption) : caption_(std::move(caption)) {}

    /** Define the column headers. Must be called before addRow(). */
    void
    header(std::vector<std::string> cols)
    {
        header_ = std::move(cols);
    }

    /** Append a row of already-formatted cells. */
    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with a sensible fixed precision. */
    static std::string
    num(double v, int precision = 2)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    static std::string num(std::uint64_t v) { return std::to_string(v); }
    static std::string num(std::int64_t v) { return std::to_string(v); }
    static std::string num(int v) { return std::to_string(v); }
    static std::string num(unsigned v) { return std::to_string(v); }

    /** Render the table. */
    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        for (std::size_t c = 0; c < header_.size(); ++c)
            width[c] = header_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        os << "\n== " << caption_ << " ==\n";
        auto rule = [&] {
            for (std::size_t c = 0; c < width.size(); ++c)
                os << std::string(width[c] + 2, '-')
                   << (c + 1 < width.size() ? "+" : "");
            os << "\n";
        };
        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < width.size(); ++c) {
                const std::string &cell =
                    c < cells.size() ? cells[c] : std::string{};
                os << " " << std::setw(static_cast<int>(width[c]))
                   << cell << " " << (c + 1 < width.size() ? "|" : "");
            }
            os << "\n";
        };
        line(header_);
        rule();
        for (const auto &row : rows_)
            line(row);
        os.flush();
    }

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sim

#endif // TTDA_COMMON_TABLE_HH

#include "common/metrics.hh"

#include "common/logging.hh"
#include "common/stats.hh" // detail::jsonNumber
#include "common/trace.hh"

namespace sim
{

MetricsRecorder::MetricsRecorder(Cycle interval, std::size_t capacity)
    : interval_(interval), effInterval_(interval), capacity_(capacity)
{
    SIM_ASSERT_MSG(interval >= 1, "metrics interval must be >= 1");
    SIM_ASSERT_MSG(capacity >= 2, "metrics capacity must be >= 2");
}

MetricsRecorder::SeriesId
MetricsRecorder::registerSeries(std::string_view name, Kind kind)
{
    for (SeriesId id = 0; id < series_.size(); ++id)
        if (series_[id].name == name)
            return id;
    SIM_ASSERT_MSG(times_.empty(),
                   "metrics series '{}' registered after sampling "
                   "began; rows would be ragged",
                   std::string(name));
    Series s;
    s.name = std::string(name);
    s.kind = kind;
    series_.push_back(std::move(s));
    return static_cast<SeriesId>(series_.size() - 1);
}

MetricsRecorder::SeriesId
MetricsRecorder::gauge(std::string_view name)
{
    return registerSeries(name, Kind::Gauge);
}

MetricsRecorder::SeriesId
MetricsRecorder::rate(std::string_view name)
{
    return registerSeries(name, Kind::Rate);
}

void
MetricsRecorder::record(Cycle now)
{
    SIM_ASSERT_MSG(times_.empty() || now >= times_.back(),
                   "metrics rows must be recorded in cycle order");
    times_.push_back(now);
    for (Series &s : series_)
        s.values.push_back(s.current);
    ++samplesRecorded_;
    // Next boundary on the interval grid strictly after `now`: the
    // grid keeps timestamps aligned however many cycles the
    // event-driven scheduler skipped past the previous boundary.
    nextDue_ = (now / effInterval_ + 1) * effInterval_;
    if (times_.size() >= capacity_)
        decimate();
}

void
MetricsRecorder::decimate()
{
    // Keep even-indexed rows: index 0 (the first sample) survives
    // every halving. Rates stay exact because rows hold cumulative
    // counter readings, which remain true at the surviving stamps.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < times_.size(); i += 2, ++kept) {
        times_[kept] = times_[i];
        for (Series &s : series_)
            s.values[kept] = s.values[i];
    }
    times_.resize(kept);
    for (Series &s : series_)
        s.values.resize(kept);
    effInterval_ *= 2;
    nextDue_ = (times_.back() / effInterval_ + 1) * effInterval_;
}

void
MetricsRecorder::finalize(Cycle now)
{
    if (!times_.empty() && times_.back() == now)
        return;
    record(now);
    if (times_.back() != now) {
        // The append crossed capacity and decimation dropped the
        // odd-indexed final row. The series must still end at the
        // run's end state, so re-append it (already counted in
        // samplesRecorded_ by record()).
        times_.push_back(now);
        for (Series &s : series_)
            s.values.push_back(s.current);
    }
}

void
MetricsRecorder::reset()
{
    times_.clear();
    for (Series &s : series_) {
        s.values.clear();
        s.current = 0.0;
    }
    effInterval_ = interval_;
    nextDue_ = 0;
    samplesRecorded_ = 0;
}

double
MetricsRecorder::rateAt(const Series &s, std::size_t row) const
{
    if (row == 0) {
        const Cycle dt = times_[0];
        return dt ? s.values[0] / static_cast<double>(dt)
                  : s.values[0];
    }
    const Cycle dt = times_[row] - times_[row - 1];
    if (dt == 0)
        return 0.0;
    return (s.values[row] - s.values[row - 1]) /
           static_cast<double>(dt);
}

void
MetricsRecorder::dumpJson(std::ostream &os) const
{
    os << "{\"interval\":" << interval_
       << ",\"effectiveInterval\":" << effInterval_
       << ",\"samplesRecorded\":" << samplesRecorded_
       << ",\"cycles\":[";
    for (std::size_t i = 0; i < times_.size(); ++i)
        os << (i ? "," : "") << times_[i];
    os << "],\"series\":{";
    for (std::size_t sidx = 0; sidx < series_.size(); ++sidx) {
        const Series &s = series_[sidx];
        os << (sidx ? "," : "") << '"' << s.name << "\":{\"kind\":\""
           << (s.kind == Kind::Rate ? "rate" : "gauge")
           << "\",\"values\":[";
        for (std::size_t i = 0; i < s.values.size(); ++i) {
            if (i)
                os << ',';
            detail::jsonNumber(os, s.values[i]);
        }
        os << "]}";
    }
    os << "}}\n";
}

void
MetricsRecorder::dumpCsv(std::ostream &os) const
{
    os << "cycle";
    for (const Series &s : series_)
        os << ',' << s.name;
    os << '\n';
    for (std::size_t row = 0; row < times_.size(); ++row) {
        os << times_[row];
        for (const Series &s : series_) {
            char buf[40];
            std::snprintf(buf, sizeof buf, "%.17g", s.values[row]);
            os << ',' << buf;
        }
        os << '\n';
    }
}

void
MetricsRecorder::exportCounters(Tracer &tracer,
                                std::uint32_t pid) const
{
    for (std::size_t row = 0; row < times_.size(); ++row) {
        for (const Series &s : series_) {
            const double v = s.kind == Kind::Rate
                                 ? rateAt(s, row)
                                 : s.values[row];
            tracer.counter(Tracer::Sched, pid, s.name, times_[row], v);
        }
    }
}

} // namespace sim

/**
 * @file
 * Minimal JSON tree: parser and writer for the daemon's newline-
 * delimited protocol (src/daemon) and its checkpoint manifests.
 *
 * Deliberately small — objects, arrays, strings, numbers, booleans,
 * null — with two properties the daemon needs that a generic library
 * would not guarantee:
 *
 *  - integers round-trip exactly: a number token with no '.', 'e' or
 *    leading '-' that fits a uint64 is kept as one (seeds are 64-bit;
 *    a double would quietly corrupt anything above 2^53);
 *  - object keys keep insertion order, so dumped documents are
 *    byte-stable across runs (the smoke gate diffs them).
 *
 * Parse errors throw json::Error with a byte offset. The existing
 * tests/common/json_check.hh stays the structural *validator* (it
 * builds no tree); this is the tree for code that must read values.
 */

#ifndef TTDA_COMMON_JSON_HH
#define TTDA_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sim::json
{

/** Malformed document (parse) or wrong-shape access (as* helpers). */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One JSON value; a tree of these is a document. */
class Value
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Int,  //!< exact unsigned/negative-integer token
        Num,  //!< any other number (double)
        Str,
        Arr,
        Obj,
    };

    Value() = default;
    static Value null() { return Value{}; }
    static Value boolean(bool b);
    static Value intNum(std::uint64_t v, bool negative = false);
    static Value num(double d);
    static Value str(std::string s);
    static Value arr();
    static Value obj();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObj() const { return kind_ == Kind::Obj; }
    bool isArr() const { return kind_ == Kind::Arr; }
    bool isStr() const { return kind_ == Kind::Str; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Num;
    }
    bool isBool() const { return kind_ == Kind::Bool; }

    bool asBool() const;
    /** Any number as double (Int converts; may round above 2^53). */
    double asDouble() const;
    /** Exact non-negative integer; throws on negatives, doubles with
     *  a fractional part, or non-numbers. */
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    const std::string &asStr() const;

    /** Int-kind introspection (used by the writer). */
    bool intIsNegative() const { return kind_ == Kind::Int && neg_; }
    std::uint64_t intMagnitude() const { return i_; }

    // ---- arrays ----------------------------------------------------
    std::size_t size() const;
    const Value &at(std::size_t i) const;
    void push(Value v);

    // ---- objects ---------------------------------------------------
    bool has(std::string_view key) const;
    /** Member access; throws Error when absent or not an object. */
    const Value &get(std::string_view key) const;
    /** Member access; null-kind sentinel when absent. */
    const Value &opt(std::string_view key) const;
    void set(std::string key, Value v);
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** Serialize (no whitespace; keys in insertion order). */
    std::string dump() const;

  private:
    Kind kind_ = Kind::Null;
    bool b_ = false;
    bool neg_ = false;        //!< Int: token had a leading '-'
    std::uint64_t i_ = 0;     //!< Int magnitude
    double d_ = 0.0;          //!< Num
    std::string s_;           //!< Str
    std::vector<Value> arr_;  //!< Arr
    std::vector<std::pair<std::string, Value>> obj_; //!< Obj, ordered
};

/** Parse one complete document; trailing garbage is an error. */
Value parse(std::string_view text);

/** Escape a string for embedding in a JSON document (no quotes). */
std::string escape(std::string_view s);

} // namespace sim::json

#endif // TTDA_COMMON_JSON_HH

/**
 * @file
 * Fundamental scalar types shared by every simulated subsystem.
 *
 * All machine models in this project are cycle-stepped: every modelled
 * unit exposes a step() that advances it by exactly one Cycle. Keeping
 * the clock type in one place makes the convention visible.
 */

#ifndef TTDA_COMMON_TYPES_HH
#define TTDA_COMMON_TYPES_HH

#include <cstdint>

namespace sim
{

/** Simulated time, measured in machine cycles since reset. */
using Cycle = std::uint64_t;

/** Sentinel for "no pending event" in event-driven schedulers. */
inline constexpr Cycle neverCycle = ~Cycle{0};

/** Identifier of a node (processing element, memory module, switch port)
 *  on an interconnection network. Dense, zero-based. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalidNode = ~NodeId{0};

} // namespace sim

#endif // TTDA_COMMON_TYPES_HH

#include "common/trace.hh"

#include <cstdio>

#include "common/logging.hh"

namespace sim
{

namespace
{

/** Append `s` to `out` with JSON string escaping. */
void
appendEscaped(std::string &out, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof esc, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += esc;
            } else {
                out.push_back(c);
            }
        }
    }
}

void
appendField(std::string &out, const char *key, std::uint64_t v)
{
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(v);
}

void
appendStringField(std::string &out, const char *key, std::string_view v)
{
    out += ",\"";
    out += key;
    out += "\":\"";
    appendEscaped(out, v);
    out += '"';
}

} // namespace

Tracer::~Tracer()
{
    close();
}

void
Tracer::open(const std::string &path, std::uint32_t mask)
{
    SIM_ASSERT_MSG(!active(), "tracer is already writing a trace");
    auto file = std::make_unique<std::ofstream>(path);
    if (!*file)
        fatal("cannot open trace file '{}' for writing", path);
    file_ = std::move(file);
    begin(*file_, mask);
}

void
Tracer::attach(std::ostream &os, std::uint32_t mask)
{
    SIM_ASSERT_MSG(!active(), "tracer is already writing a trace");
    begin(os, mask);
}

void
Tracer::begin(std::ostream &os, std::uint32_t mask)
{
    sink_ = &os;
    mask_ = mask;
    first_ = true;
    events_ = 0;
    os << "{\"traceEvents\":[";
}

void
Tracer::close()
{
    if (!sink_)
        return;
    *sink_ << "\n]}\n";
    sink_->flush();
    sink_ = nullptr;
    mask_ = 0;
    file_.reset();
}

void
Tracer::commit()
{
    *sink_ << (first_ ? "\n" : ",\n") << buf_;
    first_ = false;
    ++events_;
}

void
Tracer::commitLine(const std::string &line)
{
    if (!sink_)
        return;
    *sink_ << (first_ ? "\n" : ",\n") << line;
    first_ = false;
    ++events_;
}

std::uint32_t
Tracer::parseCategories(std::string_view spec)
{
    if (spec.empty())
        return All;
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        const std::string_view name = spec.substr(pos, comma - pos);
        if (name == "wm") {
            mask |= Wm;
        } else if (name == "fire") {
            mask |= Fire;
        } else if (name == "net") {
            mask |= Net;
        } else if (name == "mem") {
            mask |= Mem;
        } else if (name == "istr") {
            mask |= Istr;
        } else if (name == "sched") {
            mask |= Sched;
        } else if (name == "all") {
            mask |= All;
        } else {
            fatal("unknown trace category '{}' (expected "
                  "wm|fire|net|mem|istr|sched|all)", name);
        }
        pos = comma + 1;
    }
    return mask;
}

const char *
Tracer::categoryName(Category cat)
{
    switch (cat) {
      case Wm: return "wm";
      case Fire: return "fire";
      case Net: return "net";
      case Mem: return "mem";
      case Istr: return "istr";
      case Sched: return "sched";
      case All: break;
    }
    return "misc";
}

void
Tracer::processName(std::uint32_t pid, std::string_view name)
{
    if (!active())
        return;
    buf_ = "{\"ph\":\"M\",\"name\":\"process_name\"";
    appendField(buf_, "pid", pid);
    buf_ += ",\"args\":{\"name\":\"";
    appendEscaped(buf_, name);
    buf_ += "\"}}";
    commit();
}

void
Tracer::threadName(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name)
{
    if (!active())
        return;
    buf_ = "{\"ph\":\"M\",\"name\":\"thread_name\"";
    appendField(buf_, "pid", pid);
    appendField(buf_, "tid", tid);
    buf_ += ",\"args\":{\"name\":\"";
    appendEscaped(buf_, name);
    buf_ += "\"}}";
    commit();
}

void
Tracer::formatComplete(std::string &out, Category cat,
                       std::uint32_t pid, std::uint32_t tid,
                       std::string_view name, Cycle ts, Cycle dur,
                       std::string_view args)
{
    out = "{\"ph\":\"X\"";
    appendStringField(out, "name", name);
    appendStringField(out, "cat", categoryName(cat));
    appendField(out, "pid", pid);
    appendField(out, "tid", tid);
    appendField(out, "ts", ts);
    appendField(out, "dur", dur);
    if (!args.empty()) {
        out += ",\"args\":{";
        out += args;
        out += '}';
    }
    out += '}';
}

void
Tracer::formatInstant(std::string &out, Category cat, std::uint32_t pid,
                      std::uint32_t tid, std::string_view name,
                      Cycle ts, std::string_view args)
{
    out = "{\"ph\":\"i\",\"s\":\"t\"";
    appendStringField(out, "name", name);
    appendStringField(out, "cat", categoryName(cat));
    appendField(out, "pid", pid);
    appendField(out, "tid", tid);
    appendField(out, "ts", ts);
    if (!args.empty()) {
        out += ",\"args\":{";
        out += args;
        out += '}';
    }
    out += '}';
}

void
Tracer::formatCounter(std::string &out, Category cat, std::uint32_t pid,
                      std::string_view name, Cycle ts, double value)
{
    out = "{\"ph\":\"C\"";
    appendStringField(out, "name", name);
    appendStringField(out, "cat", categoryName(cat));
    appendField(out, "pid", pid);
    appendField(out, "ts", ts);
    char num[40];
    std::snprintf(num, sizeof num, "%.17g", value);
    out += ",\"args\":{\"value\":";
    out += num;
    out += "}}";
}

void
Tracer::complete(Category cat, std::uint32_t pid, std::uint32_t tid,
                 std::string_view name, Cycle ts, Cycle dur,
                 std::string_view args)
{
    if (!wants(cat))
        return;
    formatComplete(buf_, cat, pid, tid, name, ts, dur, args);
    commit();
}

void
Tracer::instant(Category cat, std::uint32_t pid, std::uint32_t tid,
                std::string_view name, Cycle ts, std::string_view args)
{
    if (!wants(cat))
        return;
    formatInstant(buf_, cat, pid, tid, name, ts, args);
    commit();
}

void
Tracer::counter(Category cat, std::uint32_t pid, std::string_view name,
                Cycle ts, double value)
{
    if (!wants(cat))
        return;
    formatCounter(buf_, cat, pid, name, ts, value);
    commit();
}

void
TraceShard::complete(Tracer::Category cat, std::uint32_t pid,
                     std::uint32_t tid, std::string_view name, Cycle ts,
                     Cycle dur, std::string_view args)
{
    if (!wants(cat))
        return;
    if (!buffered_) {
        parent_->complete(cat, pid, tid, name, ts, dur, args);
        return;
    }
    lines_.emplace_back();
    Tracer::formatComplete(lines_.back(), cat, pid, tid, name, ts, dur,
                           args);
}

void
TraceShard::instant(Tracer::Category cat, std::uint32_t pid,
                    std::uint32_t tid, std::string_view name, Cycle ts,
                    std::string_view args)
{
    if (!wants(cat))
        return;
    if (!buffered_) {
        parent_->instant(cat, pid, tid, name, ts, args);
        return;
    }
    lines_.emplace_back();
    Tracer::formatInstant(lines_.back(), cat, pid, tid, name, ts, args);
}

void
TraceShard::counter(Tracer::Category cat, std::uint32_t pid,
                    std::string_view name, Cycle ts, double value)
{
    if (!wants(cat))
        return;
    if (!buffered_) {
        parent_->counter(cat, pid, name, ts, value);
        return;
    }
    lines_.emplace_back();
    Tracer::formatCounter(lines_.back(), cat, pid, name, ts, value);
}

void
TraceShard::flush()
{
    if (lines_.empty())
        return;
    for (const std::string &line : lines_)
        parent_->commitLine(line);
    lines_.clear();
}

} // namespace sim

/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * panic()/fatal()/warn() trio.
 *
 *  - panic():  an internal invariant of the simulator was violated; this
 *              is a bug in the simulator itself. Aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, malformed program). Exits with code 1.
 *  - warn():   something suspicious happened but simulation continues.
 */

#ifndef TTDA_COMMON_LOGGING_HH
#define TTDA_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>

#include "common/format.hh"

namespace sim
{

namespace detail
{

[[noreturn]] inline void
panicExit(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

[[noreturn]] inline void
fatalExit(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

} // namespace detail

/** Abort with a formatted message; use for simulator bugs. */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    detail::panicExit(format(fmt, std::forward<Args>(args)...));
}

/** Exit with a formatted message; use for user/configuration errors. */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    detail::fatalExit(format(fmt, std::forward<Args>(args)...));
}

/** Print a non-fatal warning to stderr. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    std::cerr << "warn: " << format(fmt, std::forward<Args>(args)...)
              << std::endl;
}

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    std::cerr << "info: " << format(fmt, std::forward<Args>(args)...)
              << std::endl;
}

/** panic() unless the condition holds. */
#define SIM_ASSERT(cond)                                                    \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sim::panic("assertion '{}' failed at {}:{}",                  \
                         #cond, __FILE__, __LINE__);                        \
        }                                                                   \
    } while (0)

/** panic() unless the condition holds, with a formatted explanation. */
#define SIM_ASSERT_MSG(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sim::panic("assertion '{}' failed at {}:{}: {}",              \
                         #cond, __FILE__, __LINE__,                         \
                         ::sim::format(__VA_ARGS__));                       \
        }                                                                   \
    } while (0)

} // namespace sim

#endif // TTDA_COMMON_LOGGING_HH

#include "graph/token.hh"

namespace graph
{

std::ostream &
operator<<(std::ostream &os, const Token &t)
{
    switch (t.kind) {
      case TokenKind::Normal:
        os << "<d=0,PE" << static_cast<std::int64_t>(
                               t.pe == sim::invalidNode ? -1
                                                        : int(t.pe))
           << "," << t.tag << ",nt" << int(t.nt) << ",p" << int(t.port)
           << "," << t.data << ">";
        break;
      case TokenKind::IsFetch:
        os << "<d=1,FETCH @" << t.addr << " -> " << t.reply.tag << ">";
        break;
      case TokenKind::IsStore:
        os << "<d=1,STORE @" << t.addr << " = " << t.data << ">";
        break;
      case TokenKind::IsAlloc:
        os << "<d=1,ALLOC " << t.data << " -> " << t.reply.tag << ">";
        break;
      case TokenKind::IsAppend:
        os << "<d=1,APPEND @" << t.addr << "[" << (t.aux & 0xffffffff)
           << "] = " << t.data << " -> " << t.reply.tag << ">";
        break;
      case TokenKind::Output:
        os << "<d=2,OUTPUT " << t.tag << " = " << t.data << ">";
        break;
    }
    return os;
}

} // namespace graph

/**
 * @file
 * Cross-tier hot-spot profiler over the dense source-instruction
 * index space.
 *
 * Every execution tier — the cycle-level Machine, the direct
 * emulator, and the compiled scalar/lane VMs — can attribute its
 * activity to the *source* dataflow instruction that caused it, using
 * the shared global index `Program::instrIndexOffsets()[cb] + stmt`.
 * An InstrProfile is the common container for that attribution:
 * per-instruction fire counts plus (for the cycle-level tiers)
 * latency-weighted cycle counts. Because all tiers index the same
 * space, profiles are directly comparable across tiers — the basis of
 * the profiler-parity tests.
 *
 * Two report writers:
 *  - writeTopN: a ranked hot-instruction table (by attributed cycles,
 *    falling back to fires when no cycle attribution exists);
 *  - writeFolded: collapsed-stack ("flamegraph") lines, folding each
 *    code block into its static caller chain recovered from
 *    LoopEntry/Apply target links.
 */

#ifndef TTDA_GRAPH_PROFILE_HH
#define TTDA_GRAPH_PROFILE_HH

#include <cstdint>
#include <ostream>
#include <vector>

namespace graph
{

class Program;

/** Per-source-instruction activity attribution, indexed by the dense
 *  global instruction index (Program::instrIndexOffsets). */
struct InstrProfile
{
    std::vector<std::uint64_t> fires;  //!< source-level firings
    std::vector<std::uint64_t> cycles; //!< attributed busy cycles

    /** Size both arrays for a program's index space (zero-filled). */
    void
    resize(std::size_t n)
    {
        fires.assign(n, 0);
        cycles.assign(n, 0);
    }

    bool empty() const { return fires.empty(); }

    /** True when no activity was attributed at all. */
    bool
    allZero() const
    {
        for (std::uint64_t f : fires)
            if (f)
                return false;
        for (std::uint64_t c : cycles)
            if (c)
                return false;
        return true;
    }

    /** Fold another profile (e.g. one shard's) into this one. */
    void merge(const InstrProfile &other);
};

/** Human-readable table of the `topN` hottest instructions, ranked by
 *  attributed cycles (fires break ties; pure-fire profiles from the
 *  emulation tiers rank by fires). Labels read `cbName:stmt opcode`. */
void writeTopN(std::ostream &os, const Program &program,
               const InstrProfile &prof, std::size_t topN);

/**
 * Collapsed-stack export (one `frame;frame;leaf weight` line per
 * instruction with activity), consumable by standard flamegraph
 * tooling. The stack is the *static* call chain: each code block is
 * folded under the block containing the LoopEntry/Apply that targets
 * it, when that caller is unique; blocks with zero or multiple static
 * callers root their own stack. Recursive chains are cut at the
 * repeat. Weight is attributed cycles when any exist, else fires.
 */
void writeFolded(std::ostream &os, const Program &program,
                 const InstrProfile &prof);

} // namespace graph

#endif // TTDA_GRAPH_PROFILE_HH

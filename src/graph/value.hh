/**
 * @file
 * Runtime values carried by dataflow tokens.
 *
 * ID (the Irvine Dataflow language) is dynamically typed; a token's
 * datum is one of: unit (no useful value, used by trigger/sync arcs),
 * boolean, integer, real, a function reference (the target of APPLY),
 * or an I-structure pointer (base address + extent, so SELECTs can be
 * bounds-checked).
 */

#ifndef TTDA_GRAPH_VALUE_HH
#define TTDA_GRAPH_VALUE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/logging.hh"

namespace graph
{

/** Reference to a compiled code block (a function value). */
struct FnRef
{
    std::uint16_t codeBlock = 0;

    bool operator==(const FnRef &) const = default;
};

/** Pointer into I-structure storage: base word address and extent. */
struct IPtr
{
    std::uint64_t base = 0;
    std::uint32_t length = 0;

    bool operator==(const IPtr &) const = default;
};

/** A dynamically typed dataflow value. */
class Value
{
  public:
    using Rep = std::variant<std::monostate, bool, std::int64_t, double,
                             FnRef, IPtr>;

    Value() = default;
    Value(bool b) : rep_(b) {}
    Value(std::int64_t v) : rep_(v) {}
    Value(int v) : rep_(static_cast<std::int64_t>(v)) {}
    Value(double d) : rep_(d) {}
    Value(FnRef f) : rep_(f) {}
    Value(IPtr p) : rep_(p) {}

    bool isUnit() const { return std::holds_alternative<std::monostate>(rep_); }
    bool isBool() const { return std::holds_alternative<bool>(rep_); }
    bool isInt() const { return std::holds_alternative<std::int64_t>(rep_); }
    bool isReal() const { return std::holds_alternative<double>(rep_); }
    bool isFn() const { return std::holds_alternative<FnRef>(rep_); }
    bool isPtr() const { return std::holds_alternative<IPtr>(rep_); }
    bool isNumeric() const { return isInt() || isReal(); }

    bool
    asBool() const
    {
        SIM_ASSERT_MSG(isBool(), "value {} is not a boolean", toString());
        return std::get<bool>(rep_);
    }

    std::int64_t
    asInt() const
    {
        SIM_ASSERT_MSG(isInt(), "value {} is not an integer", toString());
        return std::get<std::int64_t>(rep_);
    }

    /** Numeric coercion: integers widen to double. */
    double
    asReal() const
    {
        if (isInt())
            return static_cast<double>(std::get<std::int64_t>(rep_));
        SIM_ASSERT_MSG(isReal(), "value {} is not numeric", toString());
        return std::get<double>(rep_);
    }

    FnRef
    asFn() const
    {
        SIM_ASSERT_MSG(isFn(), "value {} is not a function", toString());
        return std::get<FnRef>(rep_);
    }

    IPtr
    asPtr() const
    {
        SIM_ASSERT_MSG(isPtr(), "value {} is not an i-structure pointer",
                       toString());
        return std::get<IPtr>(rep_);
    }

    bool operator==(const Value &) const = default;

    /** Human-readable rendering (tests, DOT dumps, OUTPUT tokens). */
    std::string toString() const;

    const Rep &rep() const { return rep_; }

  private:
    Rep rep_;
};

std::ostream &operator<<(std::ostream &os, const Value &v);

} // namespace graph

#endif // TTDA_GRAPH_VALUE_HH

/**
 * @file
 * Firing semantics shared by the detailed machine and the fast
 * emulator (the paper's Figure 3-1 duality).
 *
 * execute() takes one enabled instruction — opcode plus the matched
 * operand set — and produces the output tokens. It performs no timing,
 * no PE mapping and no I-structure access: structure operations come
 * back as d=1 tokens for the caller's I-structure controller to
 * service, so both engines share identical semantics and can be
 * checked against each other instruction-for-instruction (experiment
 * E10).
 */

#ifndef TTDA_GRAPH_EXEC_HH
#define TTDA_GRAPH_EXEC_HH

#include <span>
#include <vector>

#include "graph/context.hh"
#include "graph/program.hh"
#include "graph/token.hh"

namespace graph
{

/** An enabled instruction: everything the ALU needs (paper: "no other
 *  information is needed to carry out the operation save that which is
 *  in this enabled instruction packet"). */
struct EnabledInstruction
{
    Tag tag;                     //!< the firing activity
    std::vector<Value> operands; //!< by port, constants appended
};

/** Executes enabled instructions against a program + context table. */
class Executor
{
  public:
    Executor(const Program &program, ContextManager &contexts)
        : program_(program), contexts_(contexts)
    {
    }

    /**
     * Fire one activity, appending the produced tokens to `out`
     * (Normal tokens have pe unset; the caller's output section
     * assigns it). `out` is not cleared, so a caller on the hot path
     * can reuse one buffer across fires without reallocating.
     */
    void execute(const EnabledInstruction &enabled,
                 std::vector<Token> &out);

    /** Convenience wrapper that returns a fresh token vector. */
    std::vector<Token>
    execute(const EnabledInstruction &enabled)
    {
        std::vector<Token> out;
        execute(enabled, out);
        return out;
    }

    const Program &program() const { return program_; }
    ContextManager &contexts() { return contexts_; }

    /** Total activities fired through this executor. */
    std::uint64_t fired() const { return fired_; }

    /** Zero the fire count (machine reset between runs). */
    void resetFired() { fired_ = 0; }

  private:
    /** Build the Normal token for edge `d` of the firing instruction,
     *  staying in `tag`'s context. */
    Token makeToken(const Tag &tag, std::uint16_t cb, const Dest &d,
                    const Value &v) const;

    const Program &program_;
    ContextManager &contexts_;
    std::uint64_t fired_ = 0;
};

} // namespace graph

#endif // TTDA_GRAPH_EXEC_HH

#include "graph/opcode.hh"

#include "common/logging.hh"

namespace graph
{

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Ident: return "IDENT";
      case Opcode::Lit: return "LIT";
      case Opcode::Output: return "OUTPUT";
      case Opcode::Add: return "ADD";
      case Opcode::Sub: return "SUB";
      case Opcode::Mul: return "MUL";
      case Opcode::Div: return "DIV";
      case Opcode::Mod: return "MOD";
      case Opcode::Neg: return "NEG";
      case Opcode::Lt: return "LT";
      case Opcode::Le: return "LE";
      case Opcode::Gt: return "GT";
      case Opcode::Ge: return "GE";
      case Opcode::Eq: return "EQ";
      case Opcode::Ne: return "NE";
      case Opcode::And: return "AND";
      case Opcode::Or: return "OR";
      case Opcode::Not: return "NOT";
      case Opcode::Switch: return "SWITCH";
      case Opcode::LoopEntry: return "L";
      case Opcode::LoopNext: return "D";
      case Opcode::LoopReset: return "D-1";
      case Opcode::LoopExit: return "L-1";
      case Opcode::Apply: return "APPLY";
      case Opcode::Return: return "RETURN";
      case Opcode::Alloc: return "ALLOC";
      case Opcode::IFetch: return "I-FETCH";
      case Opcode::IStore: return "I-STORE";
      case Opcode::Append: return "APPEND";
    }
    sim::panic("unknown opcode {}", static_cast<int>(op));
}

bool
isStructureOp(Opcode op)
{
    return op == Opcode::Alloc || op == Opcode::IFetch ||
           op == Opcode::IStore || op == Opcode::Append;
}

} // namespace graph

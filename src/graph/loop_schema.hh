/**
 * @file
 * LoopBuilder: constructs the paper's Figure 2-2 loop schema.
 *
 * A loop is its own code block. Each circulating variable v_j has:
 *
 *   receiver_j  (IDENT, statement j)  — tokens arrive here each
 *                                       iteration (from L on entry,
 *                                       from D afterwards);
 *   switch_j    (SWITCH)              — gated by the loop predicate:
 *                                       true routes v_j into the body,
 *                                       false routes it out of the loop;
 *   D_j         (LoopNext)            — carries the *new* value of v_j
 *                                       to receiver_j at iteration i+1;
 *   L⁻¹_j       (LoopExit, optional)  — returns the final value of a
 *                                       returned variable to the
 *                                       caller's code block.
 *
 * On the caller's side, one L (LoopEntry) per variable injects the
 * initial values under a fresh loop context at iteration 1; all Ls of
 * one loop share a site id so they intern the same context.
 *
 * The predicate is built by the caller from the receiver outputs
 * (it must fire before any switch can) and registered with
 * setPredicate().
 */

#ifndef TTDA_GRAPH_LOOP_SCHEMA_HH
#define TTDA_GRAPH_LOOP_SCHEMA_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "graph/builder.hh"

namespace graph
{

/** Builds a loop code block following the Figure 2-2 schema. */
class LoopBuilder
{
  public:
    /**
     * @param program  program being extended
     * @param name     loop block name (debugging)
     * @param nvars    number of circulating variables
     */
    LoopBuilder(Program &program, std::string name, std::size_t nvars)
        : builder_(program, std::move(name),
                   static_cast<std::uint16_t>(nvars)),
          nvars_(nvars)
    {
        SIM_ASSERT(nvars >= 1);
        switches_.reserve(nvars);
        for (std::size_t j = 0; j < nvars; ++j) {
            const std::uint16_t sw = builder_.add(
                Opcode::Switch, 2, sim::format("switch v{}", j));
            builder_.to(recv(j), sw, 0);
            switches_.push_back(sw);
        }
        nexts_.assign(nvars, kUnset);
        exits_.assign(nvars, kUnset);
    }

    /** The underlying builder: add body/predicate instructions here. */
    BlockBuilder &b() { return builder_; }

    /** Receiver statement of variable j (== j by construction). */
    std::uint16_t
    recv(std::size_t j) const
    {
        SIM_ASSERT(j < nvars_);
        return static_cast<std::uint16_t>(j);
    }

    /** SWITCH statement of variable j. Wire body consumers from it
     *  with b().to(sw(j), consumer, port) — the true side. */
    std::uint16_t
    sw(std::size_t j) const
    {
        SIM_ASSERT(j < nvars_);
        return switches_[j];
    }

    /** Register the boolean predicate instruction: its output becomes
     *  the control (port 1) of every variable's switch. Also records
     *  the schema on the block for schedulable-form export. */
    void
    setPredicate(std::uint16_t pred_stmt)
    {
        for (std::size_t j = 0; j < nvars_; ++j)
            builder_.to(pred_stmt, switches_[j], 1);
        builder_.loopSchema(pred_stmt, switches_);
    }

    /** The D operator of variable j (created on first use). Wire the
     *  body's new value into it: b().to(new_value_stmt, next(j), 0). */
    std::uint16_t
    next(std::size_t j)
    {
        SIM_ASSERT(j < nvars_);
        if (nexts_[j] == kUnset) {
            nexts_[j] = builder_.add(Opcode::LoopNext, 1,
                                     sim::format("D v{}", j));
            builder_.to(nexts_[j], recv(j), 0);
        }
        return nexts_[j];
    }

    /** Variable j is loop-invariant: circulate it unchanged. */
    void
    circulateUnchanged(std::size_t j)
    {
        builder_.to(sw(j), next(j), 0);
    }

    /** The L⁻¹ operator of variable j (created on first use), fed from
     *  the false side of its switch. */
    std::uint16_t
    exitStmt(std::size_t j)
    {
        SIM_ASSERT(j < nvars_);
        if (exits_[j] == kUnset) {
            exits_[j] = builder_.add(Opcode::LoopExit, 1,
                                     sim::format("L-1 v{}", j));
            builder_.to(sw(j), exits_[j], 0, /*on_false=*/true);
        }
        return exits_[j];
    }

    /** Send variable j's final value to (caller_stmt, port) in the
     *  caller's code block. */
    void
    exitTo(std::size_t j, std::uint16_t caller_stmt, std::uint8_t port)
    {
        builder_.toCaller(exitStmt(j), caller_stmt, port);
    }

    /** Finish the loop block; returns its code block id. */
    std::uint16_t
    build()
    {
        std::uint16_t exits = 0;
        for (auto e : exits_)
            exits += e != kUnset;
        builder_.numExits(exits);
        return builder_.build();
    }

    /**
     * Caller-side entry: add one L per variable to `parent`, all
     * sharing `site`, targeting `loop_cb`. Returns the L statements;
     * the caller wires each initial value into its L (port 0).
     */
    static std::vector<std::uint16_t>
    entries(BlockBuilder &parent, std::uint16_t loop_cb,
            std::uint16_t site, std::size_t nvars)
    {
        std::vector<std::uint16_t> ls;
        ls.reserve(nvars);
        for (std::size_t j = 0; j < nvars; ++j) {
            const std::uint16_t l = parent.add(
                Opcode::LoopEntry, 1, sim::format("L v{}", j));
            parent.loop(l, loop_cb, site);
            parent.to(l, static_cast<std::uint16_t>(j), 0);
            ls.push_back(l);
        }
        return ls;
    }

  private:
    static constexpr std::uint16_t kUnset = 0xffff;

    BlockBuilder builder_;
    std::size_t nvars_;
    std::vector<std::uint16_t> switches_;
    std::vector<std::uint16_t> nexts_;
    std::vector<std::uint16_t> exits_;
};

} // namespace graph

#endif // TTDA_GRAPH_LOOP_SCHEMA_HH

/**
 * @file
 * Program representation: instructions, code blocks, and the compiled
 * program (the contents of the machine's program memory).
 *
 * "Data flow compilers translate high-level programs into directed
 * graphs; vertices in the graph correspond to machine instructions,
 * and edges correspond to the data dependencies" (paper Section
 * 2.2.1). A Dest is such an edge: it names the consumer instruction
 * and which operand port the value feeds.
 */

#ifndef TTDA_GRAPH_PROGRAM_HH
#define TTDA_GRAPH_PROGRAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/opcode.hh"
#include "graph/value.hh"

namespace graph
{

/** One outgoing edge of an instruction. */
struct Dest
{
    std::uint16_t stmt = 0; //!< consumer instruction number
    std::uint8_t port = 0;  //!< operand position at the consumer

    bool operator==(const Dest &) const = default;
};

/** A machine instruction (a vertex of the dataflow graph). */
struct Instruction
{
    Opcode op = Opcode::Ident;

    /** Number of token operands (nt). 1 bypasses waiting-matching. */
    std::uint8_t nt = 1;

    /** Optional compile-time literal, appended after the token
     *  operands (so an ADD with one token input and a constant has
     *  nt = 1). */
    std::optional<Value> constant;

    /** Ordinary destinations (SWITCH: the true side). */
    std::vector<Dest> dests;

    /** SWITCH only: destinations taken when the control is false. */
    std::vector<Dest> falseDests;

    /** LoopEntry/Apply: the code block entered. For LoopEntry this is
     *  fixed at compile time; Apply reads it from its function
     *  operand, and this field (if set) is only advisory. */
    std::uint16_t targetCb = 0;

    /** LoopEntry: identifies the loop, so every L of the same loop
     *  invocation interns the same child context. */
    std::uint16_t site = 0;

    /** LoopExit: destinations lie in the *caller's* code block. */
    bool destsInCaller = false;

    /** Debugging aid shown in dumps and DOT output. */
    std::string label;
};

/** A procedure or loop body: a numbered list of instructions. */
struct CodeBlock
{
    std::string name;
    std::uint16_t id = 0;

    /** Instructions 0..numParams-1 receive the block's inputs (port 0)
     *  by convention. */
    std::uint16_t numParams = 0;

    /** Loop blocks: number of LoopExit instructions. Each invocation
     *  fires every exit exactly once, so the context manager can
     *  reclaim the loop's context after the last one (0 = the context
     *  is never reclaimed, e.g. a pure producer loop). */
    std::uint16_t numExits = 0;

    /** Schedulable-form export (recorded by LoopBuilder): the loop
     *  predicate statement and the per-variable SWITCHes it gates.
     *  Downstream compilers (src/emul) recover the Figure 2-2 loop
     *  structure from these instead of pattern-matching the graph.
     *  kNoLoopSchema = not a schema-built loop block. */
    static constexpr std::uint16_t kNoLoopSchema = 0xffff;
    std::uint16_t loopPredicate = kNoLoopSchema;
    std::vector<std::uint16_t> loopSwitches;

    bool hasLoopSchema() const { return loopPredicate != kNoLoopSchema; }

    std::vector<Instruction> instrs;

    const Instruction &
    at(std::uint16_t stmt) const
    {
        return instrs.at(stmt);
    }
};

/** A compiled program: the contents of program memory. */
class Program
{
  public:
    /** Append a code block; returns its id. */
    std::uint16_t addCodeBlock(CodeBlock cb);

    /** Reserve an id for a block filled in later (forward references
     *  between mutually recursive functions). */
    std::uint16_t reserveCodeBlock(std::string name);

    /** Fill a previously reserved id. */
    void fillCodeBlock(std::uint16_t id, CodeBlock cb);

    const CodeBlock &codeBlock(std::uint16_t id) const;
    CodeBlock &codeBlock(std::uint16_t id);
    std::size_t numCodeBlocks() const { return blocks_.size(); }

    /** Code block lookup by name; fatal if absent. */
    const CodeBlock &codeBlockByName(const std::string &name) const;

    /** The instruction a (codeBlock, stmt) pair names. */
    const Instruction &
    instruction(std::uint16_t cb, std::uint16_t stmt) const
    {
        return codeBlock(cb).at(stmt);
    }

    /**
     * Structural validation: every Dest must name an existing
     * instruction and a port below its operand count; SWITCHes must be
     * dyadic; structure ops must have the right arity. Fatal on the
     * first violation (these are compiler bugs, not user errors).
     */
    void validate() const;

    /** GraphViz rendering of one code block (Figure 2-2 style). */
    std::string toDot(std::uint16_t cb) const;

    /** Human-readable listing of one code block (or all, id = 0xffff). */
    std::string disassemble(std::uint16_t cb = 0xffff) const;

    /** Total instruction count across all code blocks. */
    std::size_t totalInstructions() const;

    /**
     * Per-block starting offsets into the dense instruction index
     * space [0, totalInstructions()): global index of (cb, stmt) is
     * offsets[cb] + stmt. The shared index space lets the execution
     * tiers compare per-instruction activity counts directly.
     */
    std::vector<std::size_t> instrIndexOffsets() const;

  private:
    std::vector<CodeBlock> blocks_;
};

/**
 * A stable topological order of one code block's instructions — the
 * schedulable form of the graph. Edges considered are the intra-block
 * data dependencies, minus the loop back-edges (LoopNext/LoopReset →
 * receiver), plus derived edges from each LoopEntry to the consumers
 * its loop's LoopExits feed (so work that consumes a loop's results
 * orders after the loop's entries). Ties break toward lower statement
 * numbers. Fatal if the remaining graph is cyclic.
 */
std::vector<std::uint16_t> topoOrder(const Program &program,
                                     std::uint16_t cb);

} // namespace graph

#endif // TTDA_GRAPH_PROGRAM_HH

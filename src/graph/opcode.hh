/**
 * @file
 * Instruction opcodes of the tagged-token machine.
 *
 * Three families:
 *  - ordinary operators (arithmetic, relational, boolean, SWITCH),
 *    executed entirely inside a processing element;
 *  - tag-manipulating operators (L, D, D⁻¹, L⁻¹, APPLY, RETURN) that
 *    implement the U-interpreter's loop and procedure schemata by
 *    rewriting context/iteration fields (paper Section 2.2.1);
 *  - structure operators (ALLOC, I_FETCH, I_STORE) that turn into
 *    d=1 tokens bound for an I-structure controller (Section 2.2.4).
 */

#ifndef TTDA_GRAPH_OPCODE_HH
#define TTDA_GRAPH_OPCODE_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace graph
{

enum class Opcode : std::uint8_t
{
    // Plumbing.
    Ident,   //!< pass the operand through (parameter receivers, forks)
    Lit,     //!< emit the constant; the operand is only a trigger
    Output,  //!< deliver the operand to the host (program result)

    // Arithmetic (int/real polymorphic; DIV always yields real).
    Add, Sub, Mul, Div, Mod, Neg,

    // Relational (yield booleans).
    Lt, Le, Gt, Ge, Eq, Ne,

    // Boolean.
    And, Or, Not,

    // Control: port 0 = data, port 1 = boolean control; the datum is
    // forwarded to dests on true, falseDests on false.
    Switch,

    // Tag manipulation (loops).
    LoopEntry,   //!< L : enter a loop code block under a fresh context
    LoopNext,    //!< D : advance the iteration number (i := i + 1)
    LoopReset,   //!< D⁻¹ : reset the iteration number (i := 1)
    LoopExit,    //!< L⁻¹ : restore the caller's context on loop exit

    // Tag manipulation (procedures).
    Apply,   //!< invoke a code block: port 0 = function, 1.. = args
    Return,  //!< send the result to the caller's recorded destinations

    // I-structure operations.
    Alloc,   //!< allocate operand-many fresh cells; yields an IPtr
    IFetch,  //!< port 0 = IPtr, port 1 = index; yields the element
    IStore,  //!< port 0 = IPtr, port 1 = index, port 2 = value
    Append,  //!< functional update: copy the structure, replace one
             //!< element, yield the new IPtr (paper Section 2.2.4)
};

/** Number of opcodes, for dense per-opcode tables. */
inline constexpr std::size_t numOpcodes =
    static_cast<std::size_t>(Opcode::Append) + 1;

/** Mnemonic used in dumps and DOT output. */
std::string_view opcodeName(Opcode op);

/** True for operators that produce no local output token directly
 *  (their results arrive later via the I-structure controller). */
bool isStructureOp(Opcode op);

} // namespace graph

#endif // TTDA_GRAPH_OPCODE_HH

#include "graph/exec.hh"

#include "common/logging.hh"
#include "graph/arith.hh"

namespace graph
{

namespace
{

/** Apply-site ids live above the builder-assigned loop-site range so
 *  the two can never collide in the context intern table. */
constexpr std::uint32_t applySiteBase = 0x10000;

} // namespace

Token
Executor::makeToken(const Tag &tag, std::uint16_t cb, const Dest &d,
                    const Value &v) const
{
    Token t;
    t.kind = TokenKind::Normal;
    t.tag = Tag{tag.ctx, cb, d.stmt, tag.iter};
    t.port = d.port;
    t.nt = program_.instruction(cb, d.stmt).nt;
    t.data = v;
    return t;
}

void
Executor::execute(const EnabledInstruction &enabled,
                  std::vector<Token> &out)
{
    const Tag &tag = enabled.tag;
    const Instruction &in = program_.instruction(tag.codeBlock, tag.stmt);
    const auto &ops = enabled.operands;
    const std::size_t expected = in.nt + (in.constant ? 1u : 0u);
    SIM_ASSERT_MSG(ops.size() == expected,
                   "{}:{} {} fired with {} operands, expected {}",
                   tag.codeBlock, tag.stmt, opcodeName(in.op),
                   ops.size(), expected);
    ++fired_;

    auto emit_all = [&](const std::vector<Dest> &dests, const Value &v) {
        for (const Dest &d : dests)
            out.push_back(makeToken(tag, tag.codeBlock, d, v));
    };

    switch (in.op) {
      case Opcode::Ident:
        emit_all(in.dests, ops[0]);
        break;

      case Opcode::Lit:
        // The token operand is only a trigger; the constant (appended
        // as the final operand) is the result.
        emit_all(in.dests, ops.back());
        break;

      case Opcode::Output: {
        Token t;
        t.kind = TokenKind::Output;
        t.tag = tag;
        t.data = ops[0];
        out.push_back(std::move(t));
        break;
      }

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Mod:
        emit_all(in.dests, arithValue(in.op, ops[0], ops[1]));
        break;

      case Opcode::Neg:
        emit_all(in.dests, negValue(ops[0]));
        break;

      case Opcode::Lt:
      case Opcode::Le:
      case Opcode::Gt:
      case Opcode::Ge:
      case Opcode::Eq:
      case Opcode::Ne:
        emit_all(in.dests, compareValue(in.op, ops[0], ops[1]));
        break;

      case Opcode::And:
        emit_all(in.dests, Value{ops[0].asBool() && ops[1].asBool()});
        break;
      case Opcode::Or:
        emit_all(in.dests, Value{ops[0].asBool() || ops[1].asBool()});
        break;
      case Opcode::Not:
        emit_all(in.dests, Value{!ops[0].asBool()});
        break;

      case Opcode::Switch:
        // Port 0 = datum, port 1 = control.
        emit_all(ops[1].asBool() ? in.dests : in.falseDests, ops[0]);
        break;

      case Opcode::LoopEntry: {
        // L: move the value into a fresh context for the loop block,
        // iteration 1. Sibling Ls of this loop invocation intern the
        // same child context.
        const ContextId child = contexts_.intern(
            tag, in.site, in.targetCb, {},
            program_.codeBlock(in.targetCb).numExits);
        for (const Dest &d : in.dests) {
            Token t = makeToken(Tag{child, in.targetCb, 0, 1},
                                in.targetCb, d, ops[0]);
            out.push_back(std::move(t));
        }
        break;
      }

      case Opcode::LoopNext: // D: i := i + 1
        for (const Dest &d : in.dests) {
            Token t = makeToken(tag, tag.codeBlock, d, ops[0]);
            t.tag.iter = tag.iter + 1;
            out.push_back(std::move(t));
        }
        break;

      case Opcode::LoopReset: // D⁻¹: i := 1
        for (const Dest &d : in.dests) {
            Token t = makeToken(tag, tag.codeBlock, d, ops[0]);
            t.tag.iter = 1;
            out.push_back(std::move(t));
        }
        break;

      case Opcode::LoopExit: { // L⁻¹: restore the caller's tag fields
        const ContextInfo &info = contexts_.info(tag.ctx);
        const Tag caller = info.caller;
        for (const Dest &d : in.dests)
            out.push_back(makeToken(caller, caller.codeBlock, d,
                                    ops[0]));
        // Every LoopExit fires exactly once per invocation; the last
        // one reclaims the loop's context id.
        contexts_.noteExit(tag.ctx);
        break;
      }

      case Opcode::Apply: {
        // Two forms: dynamic apply takes the function on port 0;
        // static apply carries it as the instruction constant (which
        // fire() appended as the *last* operand).
        const bool is_static = in.constant && in.constant->isFn();
        const FnRef fn =
            is_static ? ops.back().asFn() : ops[0].asFn();
        const std::size_t arg_begin = is_static ? 0 : 1;
        const std::size_t arg_end = is_static ? ops.size() - 1
                                              : ops.size();
        const CodeBlock &callee = program_.codeBlock(fn.codeBlock);
        const std::size_t nargs = arg_end - arg_begin;
        SIM_ASSERT_MSG(nargs == callee.numParams,
                       "APPLY of '{}' with {} args, expected {}",
                       callee.name, nargs, callee.numParams);
        const ContextId child = contexts_.intern(
            tag, applySiteBase + tag.stmt, fn.codeBlock, in.dests);
        for (std::size_t j = 0; j < nargs; ++j) {
            out.push_back(makeToken(
                Tag{child, fn.codeBlock, 0, 1}, fn.codeBlock,
                Dest{static_cast<std::uint16_t>(j), 0},
                ops[arg_begin + j]));
        }
        break;
      }

      case Opcode::Return: {
        const ContextInfo &info = contexts_.info(tag.ctx);
        const Tag caller = info.caller;
        for (const Dest &d : info.resultDests)
            out.push_back(makeToken(caller, caller.codeBlock, d,
                                    ops[0]));
        contexts_.release(tag.ctx);
        break;
      }

      case Opcode::Alloc: {
        SIM_ASSERT_MSG(in.dests.size() == 1,
                       "ALLOC needs exactly one destination (insert an "
                       "IDENT fan-out)");
        const std::int64_t n = ops[0].asInt();
        SIM_ASSERT_MSG(n >= 0, "ALLOC of negative size {}", n);
        Token t;
        t.kind = TokenKind::IsAlloc;
        t.data = Value{n};
        const Dest &d = in.dests[0];
        t.reply = Continuation{
            Tag{tag.ctx, tag.codeBlock, d.stmt, tag.iter}, d.port,
            program_.instruction(tag.codeBlock, d.stmt).nt};
        out.push_back(std::move(t));
        break;
      }

      case Opcode::IFetch: {
        SIM_ASSERT_MSG(in.dests.size() == 1,
                       "I-FETCH needs exactly one destination (insert "
                       "an IDENT fan-out)");
        const IPtr ptr = ops[0].asPtr();
        const std::int64_t idx = ops[1].asInt();
        SIM_ASSERT_MSG(idx >= 0 && idx < ptr.length,
                       "I-FETCH index {} out of bounds [0,{})", idx,
                       ptr.length);
        Token t;
        t.kind = TokenKind::IsFetch;
        t.addr = ptr.base + static_cast<std::uint64_t>(idx);
        const Dest &d = in.dests[0];
        t.reply = Continuation{
            Tag{tag.ctx, tag.codeBlock, d.stmt, tag.iter}, d.port,
            program_.instruction(tag.codeBlock, d.stmt).nt};
        out.push_back(std::move(t));
        break;
      }

      case Opcode::IStore: {
        const IPtr ptr = ops[0].asPtr();
        const std::int64_t idx = ops[1].asInt();
        SIM_ASSERT_MSG(idx >= 0 && idx < ptr.length,
                       "I-STORE index {} out of bounds [0,{})", idx,
                       ptr.length);
        Token t;
        t.kind = TokenKind::IsStore;
        t.addr = ptr.base + static_cast<std::uint64_t>(idx);
        t.data = ops[2];
        out.push_back(std::move(t));
        break;
      }

      case Opcode::Append: {
        SIM_ASSERT_MSG(in.dests.size() == 1,
                       "APPEND needs exactly one destination (insert "
                       "an IDENT fan-out)");
        const IPtr ptr = ops[0].asPtr();
        const std::int64_t idx = ops[1].asInt();
        SIM_ASSERT_MSG(idx >= 0 && idx < ptr.length,
                       "APPEND index {} out of bounds [0,{})", idx,
                       ptr.length);
        Token t;
        t.kind = TokenKind::IsAppend;
        t.addr = ptr.base;
        t.aux = (static_cast<std::uint64_t>(ptr.length) << 32) |
                static_cast<std::uint64_t>(idx);
        t.data = ops[2];
        const Dest &d = in.dests[0];
        t.reply = Continuation{
            Tag{tag.ctx, tag.codeBlock, d.stmt, tag.iter}, d.port,
            program_.instruction(tag.codeBlock, d.stmt).nt};
        out.push_back(std::move(t));
        break;
      }
    }
}

} // namespace graph

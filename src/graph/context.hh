/**
 * @file
 * ContextManager: maps the unbounded activity-name space onto finite
 * runtime context ids (paper Section 2.2.2: "Activity names define an
 * unbounded namespace. Names in this space are mapped dynamically into
 * a finite namespace.").
 *
 * A context is created when a code block is invoked:
 *  - APPLY interns a child context for (caller activity, call site)
 *    and records where the callee's RETURN must send results;
 *  - every L operator of one loop invocation interns the *same* child
 *    context, keyed by (caller ctx, caller iter, loop site), so the
 *    circulating tokens can find their partners inside the loop block.
 *
 * The manager is modelled as a single shared service; the real machine
 * distributes these tables across PEs. The simplification is documented
 * in DESIGN.md — context operations are charged as ordinary instruction
 * execution time.
 */

#ifndef TTDA_GRAPH_CONTEXT_HH
#define TTDA_GRAPH_CONTEXT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "graph/program.hh"
#include "graph/tag.hh"

namespace graph
{

/** What the machine remembers about one code block invocation. */
struct ContextInfo
{
    Tag caller;                    //!< activity that created the context
    std::uint16_t targetCb = 0;    //!< block executing in this context
    std::vector<Dest> resultDests; //!< where RETURN/L⁻¹ results go
    //! Loop contexts: LoopExit firings still expected before the
    //! context id can be reclaimed (0 = never reclaimed).
    std::uint16_t remainingExits = 0;
};

/** Shared runtime table of live contexts. */
class ContextManager
{
  public:
    ContextManager();

    /**
     * Find or create the child context for an invocation.
     *
     * @param caller       the invoking activity (its ctx/cb/iter
     *                     identify the invocation; stmt is ignored for
     *                     loops so sibling L operators agree)
     * @param site         call/loop site id, unique within the caller
     * @param target_cb    the block the child executes
     * @param result_dests destinations (in the caller's block) for the
     *                     child's results; recorded on first intern
     */
    ContextId intern(const Tag &caller, std::uint32_t site,
                     std::uint16_t target_cb,
                     const std::vector<Dest> &result_dests,
                     std::uint16_t expected_exits = 0);

    /** Look up a live context. Fatal if the id is unknown. */
    const ContextInfo &info(ContextId id) const;

    /** Release a context (RETURN). The id is never reused within a
     *  run, so stale tokens are detected rather than misrouted. */
    void release(ContextId id);

    /** Record one LoopExit firing; reclaims the context after the
     *  last expected exit. */
    void noteExit(ContextId id);

    std::uint64_t totalReleased() const { return released_.value(); }

    std::size_t liveContexts() const { return live_.size(); }
    std::uint64_t peakContexts() const { return peak_; }
    std::uint64_t totalCreated() const { return created_.value(); }

    /**
     * The root-level initiation number a context descends from: walk
     * the caller chain to the activity that runs directly in the root
     * context and return its iter field. The serving fast path injects
     * request r with iter r+1, so this attributes any context — however
     * deeply nested its invocation — to the request that spawned it.
     * Returns 0 when a context along the chain has been released.
     */
    std::uint32_t rootIter(ContextId id) const;

    /** Drop everything except the root context (between runs). */
    void reset();

    /** Serialize the whole table for checkpointing. W is a snapshot
     *  writer; tags and destinations go through ADL `snapSave`. */
    template <typename W>
    void
    save(W &w) const
    {
        w.u64(interned_.size());
        for (const auto &[key, id] : interned_) {
            w.u32(key.ctx);
            w.u32(key.iter);
            w.u32(key.site);
            w.u32(id);
        }
        w.u64(live_.size());
        for (const auto &[id, info] : live_) {
            w.u32(id);
            snapSave(w, info.caller);
            w.u16(info.targetCb);
            w.u64(info.resultDests.size());
            for (const Dest &d : info.resultDests)
                snapSave(w, d);
            w.u16(info.remainingExits);
        }
        w.u32(next_);
        w.u64(peak_);
        w.u64(created_.value());
        w.u64(released_.value());
    }

    /** Rebuild the table from a save() stream. Hash-map iteration
     *  order is rebuilt, not preserved — nothing behavioural reads
     *  it (lookups are by key; only forensics iterate). */
    template <typename R>
    void
    load(R &r)
    {
        interned_.clear();
        live_.clear();
        const std::uint64_t ni = r.u64();
        for (std::uint64_t i = 0; i < ni; ++i) {
            Key key{};
            key.ctx = r.u32();
            key.iter = r.u32();
            key.site = r.u32();
            interned_.emplace(key, r.u32());
        }
        const std::uint64_t nl = r.u64();
        for (std::uint64_t i = 0; i < nl; ++i) {
            const ContextId id = r.u32();
            ContextInfo info;
            snapLoad(r, info.caller);
            info.targetCb = r.u16();
            const std::uint64_t nd = r.u64();
            for (std::uint64_t k = 0; k < nd; ++k) {
                Dest d{};
                snapLoad(r, d);
                info.resultDests.push_back(d);
            }
            info.remainingExits = r.u16();
            live_.emplace(id, std::move(info));
        }
        next_ = r.u32();
        peak_ = r.u64();
        created_.reset();
        created_.inc(r.u64());
        released_.reset();
        released_.inc(r.u64());
    }

  private:
    struct Key
    {
        ContextId ctx;
        std::uint32_t iter;
        std::uint32_t site;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::uint64_t z = (static_cast<std::uint64_t>(k.ctx) << 32) ^
                              (static_cast<std::uint64_t>(k.iter) << 8) ^
                              k.site;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            return static_cast<std::size_t>(z ^ (z >> 31));
        }
    };

    std::unordered_map<Key, ContextId, KeyHash> interned_;
    std::unordered_map<ContextId, ContextInfo> live_;
    ContextId next_ = rootContext + 1;
    std::uint64_t peak_ = 1;
    sim::Counter created_;
    sim::Counter released_;
};

} // namespace graph

#endif // TTDA_GRAPH_CONTEXT_HH

/**
 * @file
 * Checkpoint codecs (`snapSave`/`snapLoad`) for the graph-layer value
 * types that appear inside machine run state: tags, continuations,
 * dynamically typed values, tokens, I-structure continuations and
 * destination records.
 *
 * The functions are templates over the writer/reader type, found by
 * argument-dependent lookup from the container codecs in
 * common/{stats,eventheap,ringqueue}.hh and the templated save/load
 * members of IStructure / ContextManager / the network topologies.
 * Nothing here depends on common/snapshot.hh; the concrete W/R bind
 * at instantiation inside ttda/snapshot.cc.
 */

#ifndef TTDA_GRAPH_SNAPCODEC_HH
#define TTDA_GRAPH_SNAPCODEC_HH

#include <cstdint>

#include "graph/exec.hh"
#include "graph/program.hh"
#include "graph/tag.hh"
#include "graph/token.hh"
#include "graph/value.hh"

namespace graph
{

template <typename W>
void
snapSave(W &w, const Tag &t)
{
    w.u32(t.ctx);
    w.u16(t.codeBlock);
    w.u16(t.stmt);
    w.u32(t.iter);
}

template <typename R>
void
snapLoad(R &r, Tag &t)
{
    t.ctx = r.u32();
    t.codeBlock = r.u16();
    t.stmt = r.u16();
    t.iter = r.u32();
}

template <typename W>
void
snapSave(W &w, const Continuation &c)
{
    snapSave(w, c.tag);
    w.u8(c.port);
    w.u8(c.nt);
}

template <typename R>
void
snapLoad(R &r, Continuation &c)
{
    snapLoad(r, c.tag);
    c.port = r.u8();
    c.nt = r.u8();
}

template <typename W>
void
snapSave(W &w, const Dest &d)
{
    w.u16(d.stmt);
    w.u8(d.port);
}

template <typename R>
void
snapLoad(R &r, Dest &d)
{
    d.stmt = r.u16();
    d.port = r.u8();
}

/** Values encode as the variant alternative index plus the payload of
 *  that alternative. Reals round-trip as raw bit patterns. */
template <typename W>
void
snapSave(W &w, const Value &v)
{
    w.u8(static_cast<std::uint8_t>(v.rep().index()));
    if (v.isBool()) {
        w.b(v.asBool());
    } else if (v.isInt()) {
        w.i64(v.asInt());
    } else if (v.isReal()) {
        w.f64(std::get<double>(v.rep()));
    } else if (v.isFn()) {
        w.u16(v.asFn().codeBlock);
    } else if (v.isPtr()) {
        w.u64(v.asPtr().base);
        w.u32(v.asPtr().length);
    }
}

template <typename R>
void
snapLoad(R &r, Value &v)
{
    switch (r.u8()) {
      case 0:
        v = Value{};
        break;
      case 1:
        v = Value{r.b()};
        break;
      case 2:
        v = Value{r.i64()};
        break;
      case 3:
        v = Value{r.f64()};
        break;
      case 4:
        v = Value{FnRef{r.u16()}};
        break;
      case 5: {
        IPtr p;
        p.base = r.u64();
        p.length = r.u32();
        v = Value{p};
        break;
      }
      default:
        r.fail("bad value alternative");
    }
}

template <typename W>
void
snapSave(W &w, const Token &t)
{
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.u32(t.pe);
    snapSave(w, t.tag);
    w.u8(t.port);
    w.u8(t.nt);
    snapSave(w, t.data);
    w.u64(t.addr);
    w.u64(t.aux);
    snapSave(w, t.reply);
    w.u32(t.seq);
    w.u32(t.born);
}

template <typename R>
void
snapLoad(R &r, Token &t)
{
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(TokenKind::Output))
        r.fail("bad token kind");
    t.kind = static_cast<TokenKind>(kind);
    t.pe = r.u32();
    snapLoad(r, t.tag);
    t.port = r.u8();
    t.nt = r.u8();
    snapLoad(r, t.data);
    t.addr = r.u64();
    t.aux = r.u64();
    snapLoad(r, t.reply);
    t.seq = r.u32();
    t.born = r.u32();
}

template <typename W>
void
snapSave(W &w, const IsCont &c)
{
    w.b(c.toCell);
    w.u32(c.born);
    snapSave(w, c.cont);
    w.u64(c.cellAddr);
}

template <typename R>
void
snapLoad(R &r, IsCont &c)
{
    c.toCell = r.b();
    c.born = r.u32();
    snapLoad(r, c.cont);
    c.cellAddr = r.u64();
}

template <typename W>
void
snapSave(W &w, const EnabledInstruction &e)
{
    snapSave(w, e.tag);
    w.u64(e.operands.size());
    for (const Value &v : e.operands)
        snapSave(w, v);
}

template <typename R>
void
snapLoad(R &r, EnabledInstruction &e)
{
    snapLoad(r, e.tag);
    e.operands.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Value v;
        snapLoad(r, v);
        e.operands.push_back(v);
    }
}

} // namespace graph

#endif // TTDA_GRAPH_SNAPCODEC_HH

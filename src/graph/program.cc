#include "graph/program.hh"

#include <functional>
#include <queue>
#include <sstream>

#include "common/logging.hh"

namespace graph
{

namespace
{

/** Token-operand count an opcode requires (0 = caller-specified). */
int
requiredArity(Opcode op)
{
    switch (op) {
      case Opcode::Ident:
      case Opcode::Lit:
      case Opcode::Output:
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::LoopEntry:
      case Opcode::LoopNext:
      case Opcode::LoopReset:
      case Opcode::LoopExit:
      case Opcode::Return:
      case Opcode::Alloc:
        return 1;
      case Opcode::Switch:
        return 2;
      case Opcode::IStore:
      case Opcode::Append:
        return 3;
      case Opcode::Apply:
        return 0; // 1 + arity, checked separately
      default:
        return 0; // binary ops may take a constant as second operand
    }
}

} // namespace

std::uint16_t
Program::addCodeBlock(CodeBlock cb)
{
    cb.id = static_cast<std::uint16_t>(blocks_.size());
    blocks_.push_back(std::move(cb));
    return blocks_.back().id;
}

std::uint16_t
Program::reserveCodeBlock(std::string name)
{
    CodeBlock cb;
    cb.name = std::move(name);
    return addCodeBlock(std::move(cb));
}

void
Program::fillCodeBlock(std::uint16_t id, CodeBlock cb)
{
    SIM_ASSERT_MSG(id < blocks_.size(), "fill of unreserved block {}",
                   id);
    SIM_ASSERT_MSG(blocks_[id].instrs.empty(),
                   "code block {} ('{}') filled twice", id,
                   blocks_[id].name);
    cb.id = id;
    blocks_[id] = std::move(cb);
}

const CodeBlock &
Program::codeBlock(std::uint16_t id) const
{
    SIM_ASSERT_MSG(id < blocks_.size(), "no code block {}", id);
    return blocks_[id];
}

CodeBlock &
Program::codeBlock(std::uint16_t id)
{
    SIM_ASSERT_MSG(id < blocks_.size(), "no code block {}", id);
    return blocks_[id];
}

const CodeBlock &
Program::codeBlockByName(const std::string &name) const
{
    for (const auto &cb : blocks_)
        if (cb.name == name)
            return cb;
    sim::fatal("no code block named '{}'", name);
}

std::size_t
Program::totalInstructions() const
{
    std::size_t n = 0;
    for (const auto &cb : blocks_)
        n += cb.instrs.size();
    return n;
}

std::vector<std::size_t>
Program::instrIndexOffsets() const
{
    std::vector<std::size_t> offsets;
    offsets.reserve(blocks_.size());
    std::size_t n = 0;
    for (const auto &cb : blocks_) {
        offsets.push_back(n);
        n += cb.instrs.size();
    }
    return offsets;
}

std::vector<std::uint16_t>
topoOrder(const Program &program, std::uint16_t cb_id)
{
    const CodeBlock &cb = program.codeBlock(cb_id);
    const std::size_t n = cb.instrs.size();
    std::vector<std::vector<std::uint16_t>> succs(n);
    std::vector<std::uint32_t> indeg(n, 0);
    auto edge = [&](std::uint16_t from, std::uint16_t to) {
        succs[from].push_back(to);
        indeg[to] += 1;
    };
    for (std::uint16_t s = 0; s < n; ++s) {
        const Instruction &in = cb.instrs[s];
        if (in.op == Opcode::LoopNext || in.op == Opcode::LoopReset)
            continue; // back-edges to the receivers
        if (in.destsInCaller || in.op == Opcode::Return)
            continue; // cross-block
        if (in.op == Opcode::LoopEntry) {
            // Derived edges: this loop's exit values feed consumers in
            // *this* block, so those consumers order after the entry.
            const CodeBlock &loop = program.codeBlock(in.targetCb);
            for (const Instruction &li : loop.instrs) {
                if (li.op != Opcode::LoopExit || !li.destsInCaller)
                    continue;
                for (const Dest &d : li.dests)
                    edge(s, d.stmt);
            }
            continue;
        }
        for (const Dest &d : in.dests)
            edge(s, d.stmt);
        for (const Dest &d : in.falseDests)
            edge(s, d.stmt);
    }

    // Kahn's algorithm with a min-heap on statement number, so the
    // order is stable and respects source order among ready nodes.
    std::priority_queue<std::uint16_t, std::vector<std::uint16_t>,
                        std::greater<>> ready;
    for (std::uint16_t s = 0; s < n; ++s)
        if (indeg[s] == 0)
            ready.push(s);
    std::vector<std::uint16_t> order;
    order.reserve(n);
    while (!ready.empty()) {
        const std::uint16_t s = ready.top();
        ready.pop();
        order.push_back(s);
        for (const std::uint16_t t : succs[s])
            if (--indeg[t] == 0)
                ready.push(t);
    }
    SIM_ASSERT_MSG(order.size() == n,
                   "topoOrder: cycle among the forward edges of code "
                   "block '{}' ({} of {} instructions ordered)",
                   cb.name, order.size(), n);
    return order;
}

void
Program::validate() const
{
    for (const auto &cb : blocks_) {
        SIM_ASSERT_MSG(cb.numParams <= cb.instrs.size(),
                       "code block '{}' declares {} params but has {} "
                       "instructions", cb.name, cb.numParams,
                       cb.instrs.size());
        for (std::size_t s = 0; s < cb.instrs.size(); ++s) {
            const Instruction &in = cb.instrs[s];
            const std::string where =
                sim::format("{}:{} ({})", cb.name, s, opcodeName(in.op));

            SIM_ASSERT_MSG(in.nt >= 1 && in.nt <= 4,
                           "{}: nt {} out of range", where, in.nt);
            const int req = requiredArity(in.op);
            if (req > 0) {
                SIM_ASSERT_MSG(in.nt == req,
                               "{}: needs nt {} but has {}", where, req,
                               in.nt);
            }
            if (in.op == Opcode::Apply) {
                SIM_ASSERT_MSG(in.nt >= 1,
                               "{}: APPLY needs the function operand",
                               where);
            }
            SIM_ASSERT_MSG(in.falseDests.empty() ||
                               in.op == Opcode::Switch,
                           "{}: only SWITCH may have false dests", where);
            SIM_ASSERT_MSG(!in.destsInCaller ||
                               in.op == Opcode::LoopExit ||
                               in.op == Opcode::Return,
                           "{}: only L-1/RETURN target the caller",
                           where);
            if (in.op == Opcode::LoopEntry) {
                SIM_ASSERT_MSG(in.targetCb < blocks_.size(),
                               "{}: loop target cb {} does not exist",
                               where, in.targetCb);
            }
            if (in.op == Opcode::Lit) {
                SIM_ASSERT_MSG(in.constant.has_value(),
                               "{}: LIT needs a constant", where);
            }
            if (in.op == Opcode::Alloc || in.op == Opcode::IFetch ||
                in.op == Opcode::Append)
            {
                // The d=1 token carries a single reply continuation;
                // fan-out needs an explicit IDENT.
                SIM_ASSERT_MSG(in.dests.size() == 1,
                               "{}: structure ops need exactly one "
                               "destination, found {}", where,
                               in.dests.size());
            }
            if ((in.op == Opcode::Add || in.op == Opcode::Sub ||
                 in.op == Opcode::Mul || in.op == Opcode::Div ||
                 in.op == Opcode::Mod || in.op == Opcode::Lt ||
                 in.op == Opcode::Le || in.op == Opcode::Gt ||
                 in.op == Opcode::Ge || in.op == Opcode::Eq ||
                 in.op == Opcode::Ne || in.op == Opcode::And ||
                 in.op == Opcode::Or) &&
                in.nt == 1)
            {
                SIM_ASSERT_MSG(in.constant.has_value(),
                               "{}: single-operand binary op needs a "
                               "constant", where);
            }

            // Edge validation. Destinations of caller-targeting
            // instructions cannot be checked statically here (the
            // caller block is dynamic); everything else must resolve.
            if (in.destsInCaller || in.op == Opcode::Return)
                continue;
            const CodeBlock &dest_cb =
                in.op == Opcode::LoopEntry ? blocks_[in.targetCb] : cb;
            auto check = [&](const Dest &d) {
                SIM_ASSERT_MSG(d.stmt < dest_cb.instrs.size(),
                               "{}: dest stmt {} beyond block '{}'",
                               where, d.stmt, dest_cb.name);
                const Instruction &t = dest_cb.instrs[d.stmt];
                SIM_ASSERT_MSG(d.port < t.nt,
                               "{}: dest port {} >= nt {} of {}:{}",
                               where, d.port, t.nt, dest_cb.name,
                               d.stmt);
            };
            for (const Dest &d : in.dests)
                check(d);
            for (const Dest &d : in.falseDests)
                check(d);
        }
    }
}

std::string
Program::disassemble(std::uint16_t cb_id) const
{
    std::ostringstream os;
    auto one = [&](const CodeBlock &cb) {
        os << "code block " << cb.id << " '" << cb.name << "' ("
           << cb.numParams << " params)\n";
        for (std::size_t s_i = 0; s_i < cb.instrs.size(); ++s_i) {
            const Instruction &in = cb.instrs[s_i];
            os << "  " << s_i << ": " << opcodeName(in.op) << " nt="
               << int(in.nt);
            if (in.constant)
                os << " const=" << in.constant->toString();
            if (in.op == Opcode::LoopEntry)
                os << " ->cb" << in.targetCb << " site=" << in.site;
            if (!in.dests.empty()) {
                os << " ->";
                for (const Dest &d : in.dests)
                    os << " " << (in.destsInCaller ? "caller:" : "")
                       << d.stmt << "." << int(d.port);
            }
            if (!in.falseDests.empty()) {
                os << " =F=>";
                for (const Dest &d : in.falseDests)
                    os << " " << d.stmt << "." << int(d.port);
            }
            if (!in.label.empty())
                os << "   ; " << in.label;
            os << "\n";
        }
    };
    if (cb_id == 0xffff) {
        for (const auto &cb : blocks_)
            one(cb);
    } else {
        one(codeBlock(cb_id));
    }
    return os.str();
}

std::string
Program::toDot(std::uint16_t cb_id) const
{
    const CodeBlock &cb = codeBlock(cb_id);
    std::ostringstream os;
    os << "digraph \"" << cb.name << "\" {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";
    for (std::size_t s = 0; s < cb.instrs.size(); ++s) {
        const Instruction &in = cb.instrs[s];
        os << "  n" << s << " [label=\"" << s << ": "
           << opcodeName(in.op);
        if (!in.label.empty())
            os << "\\n" << in.label;
        if (in.constant)
            os << "\\nconst=" << in.constant->toString();
        os << "\"];\n";
    }
    for (std::size_t s = 0; s < cb.instrs.size(); ++s) {
        const Instruction &in = cb.instrs[s];
        if (in.destsInCaller || in.op == Opcode::Return ||
            in.op == Opcode::LoopEntry)
        {
            continue; // cross-block edges not drawn
        }
        for (const Dest &d : in.dests)
            os << "  n" << s << " -> n" << d.stmt << " [label=\"p"
               << int(d.port) << "\"];\n";
        for (const Dest &d : in.falseDests)
            os << "  n" << s << " -> n" << d.stmt << " [label=\"p"
               << int(d.port) << " (F)\", style=dashed];\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace graph

/**
 * @file
 * Activity names (tags) — paper Section 2.2.2.
 *
 * A token's next-instruction label has four parts:
 *   u — the context in which the code block is invoked (recursive in
 *       the abstract model; at run time an id into the context table),
 *   c — the code block name,
 *   s — the statement (instruction) number within the code block,
 *   i — the initiation (loop iteration) number, 1 outside loops.
 *
 * Two tokens are partners when their full tags match; the operand
 * position (port) is carried beside the tag, not inside it.
 */

#ifndef TTDA_GRAPH_TAG_HH
#define TTDA_GRAPH_TAG_HH

#include <cstdint>
#include <functional>
#include <ostream>

namespace graph
{

/** Runtime context id (the finite mapping of the unbounded u). */
using ContextId = std::uint32_t;

/** The root context in which `main` executes. */
inline constexpr ContextId rootContext = 0;

/** A fully qualified activity name <u, c, s, i>. */
struct Tag
{
    ContextId ctx = rootContext;  //!< u
    std::uint16_t codeBlock = 0;  //!< c
    std::uint16_t stmt = 0;       //!< s
    std::uint32_t iter = 1;       //!< i

    bool operator==(const Tag &) const = default;

    /** Stable 64-bit packing (used for hashing and PE mapping). */
    std::uint64_t
    packed() const
    {
        return (static_cast<std::uint64_t>(ctx) << 32) ^
               (static_cast<std::uint64_t>(codeBlock) << 48) ^
               (static_cast<std::uint64_t>(stmt) << 16) ^ iter;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Tag &t)
{
    return os << "<u" << t.ctx << ",c" << t.codeBlock << ",s" << t.stmt
              << ",i" << t.iter << ">";
}

/** Where a fetched/allocated datum must be sent: a tag plus port. */
struct Continuation
{
    Tag tag;
    std::uint8_t port = 0;
    std::uint8_t nt = 1; //!< operand count of the target instruction

    bool operator==(const Continuation &) const = default;
};

struct TagHash
{
    std::size_t
    operator()(const Tag &t) const
    {
        // SplitMix64 finalizer over the packed representation.
        std::uint64_t z = t.packed() + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }
};

} // namespace graph

#endif // TTDA_GRAPH_TAG_HH

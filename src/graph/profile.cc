#include "graph/profile.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "graph/program.hh"

namespace graph
{

namespace
{

/** Resolve a dense global index back to its (cb, stmt) pair. */
struct SiteIndex
{
    explicit SiteIndex(const Program &program)
        : offsets(program.instrIndexOffsets())
    {
    }

    std::pair<std::uint16_t, std::uint16_t>
    site(std::size_t global) const
    {
        // offsets is nondecreasing; find the last block starting at or
        // before `global`.
        auto it = std::upper_bound(offsets.begin(), offsets.end(), global);
        SIM_ASSERT(it != offsets.begin());
        const std::size_t cb =
            static_cast<std::size_t>(it - offsets.begin()) - 1;
        return {static_cast<std::uint16_t>(cb),
                static_cast<std::uint16_t>(global - offsets[cb])};
    }

    std::vector<std::size_t> offsets;
};

std::string
instrLabel(const Program &program, std::uint16_t cb, std::uint16_t stmt)
{
    const Instruction &in = program.instruction(cb, stmt);
    std::string label = program.codeBlock(cb).name;
    label += ':';
    label += std::to_string(stmt);
    label += ' ';
    label += opcodeName(in.op);
    if (!in.label.empty()) {
        label += " [";
        label += in.label;
        label += ']';
    }
    return label;
}

/**
 * callers[cb] = the unique code block containing a LoopEntry or Apply
 * that statically targets cb, or kNone when there is no such block or
 * more than one (ambiguous — Apply's targetCb is only advisory, and a
 * block invoked from several sites has no single static stack).
 */
constexpr std::uint16_t kNoCaller = 0xffff;
constexpr std::uint16_t kManyCallers = 0xfffe;

std::vector<std::uint16_t>
staticCallers(const Program &program)
{
    std::vector<std::uint16_t> callers(program.numCodeBlocks(),
                                       kNoCaller);
    for (std::size_t cb = 0; cb < program.numCodeBlocks(); ++cb) {
        for (const Instruction &in : program.codeBlock(
                 static_cast<std::uint16_t>(cb)).instrs)
        {
            const bool isCall =
                in.op == Opcode::LoopEntry ||
                // Apply's targetCb is advisory and defaults to 0; a
                // zero target is indistinguishable from "unknown"
                // (block 0 is the entry block, never Apply-invoked).
                (in.op == Opcode::Apply && in.targetCb != 0);
            if (!isCall)
                continue;
            const std::uint16_t callee = in.targetCb;
            if (callee >= callers.size() || callee == cb)
                continue;
            std::uint16_t &slot = callers[callee];
            if (slot == kNoCaller)
                slot = static_cast<std::uint16_t>(cb);
            else if (slot != cb)
                slot = kManyCallers;
        }
    }
    return callers;
}

} // namespace

void
InstrProfile::merge(const InstrProfile &other)
{
    if (other.empty())
        return;
    if (empty())
        resize(other.fires.size());
    SIM_ASSERT_MSG(other.fires.size() == fires.size(),
                   "merging profiles over different index spaces");
    for (std::size_t i = 0; i < fires.size(); ++i) {
        fires[i] += other.fires[i];
        cycles[i] += other.cycles[i];
    }
}

void
writeTopN(std::ostream &os, const Program &program,
          const InstrProfile &prof, std::size_t topN)
{
    struct Row
    {
        std::size_t global;
        std::uint64_t fires;
        std::uint64_t cycles;
    };
    std::vector<Row> rows;
    for (std::size_t i = 0; i < prof.fires.size(); ++i) {
        const std::uint64_t c =
            i < prof.cycles.size() ? prof.cycles[i] : 0;
        if (prof.fires[i] || c)
            rows.push_back({i, prof.fires[i], c});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        if (a.cycles != b.cycles)
            return a.cycles > b.cycles;
        if (a.fires != b.fires)
            return a.fires > b.fires;
        return a.global < b.global;
    });
    if (rows.size() > topN)
        rows.resize(topN);

    std::uint64_t totalCycles = 0, totalFires = 0;
    for (std::size_t i = 0; i < prof.fires.size(); ++i) {
        totalFires += prof.fires[i];
        if (i < prof.cycles.size())
            totalCycles += prof.cycles[i];
    }

    const SiteIndex sites(program);
    os << "hot instructions (top " << rows.size() << " of "
       << prof.fires.size() << " sites; total fires " << totalFires
       << ", total cycles " << totalCycles << ")\n";
    os << "  rank       cycles        fires  instruction\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const auto [cb, stmt] = sites.site(rows[r].global);
        char buf[64];
        std::snprintf(buf, sizeof buf, "  %4zu %12llu %12llu  ", r + 1,
                      static_cast<unsigned long long>(rows[r].cycles),
                      static_cast<unsigned long long>(rows[r].fires));
        os << buf << instrLabel(program, cb, stmt) << '\n';
    }
}

void
writeFolded(std::ostream &os, const Program &program,
            const InstrProfile &prof)
{
    bool anyCycles = false;
    for (std::uint64_t c : prof.cycles)
        if (c) {
            anyCycles = true;
            break;
        }

    const SiteIndex sites(program);
    const std::vector<std::uint16_t> callers = staticCallers(program);

    for (std::size_t i = 0; i < prof.fires.size(); ++i) {
        const std::uint64_t weight =
            anyCycles ? (i < prof.cycles.size() ? prof.cycles[i] : 0)
                      : prof.fires[i];
        if (weight == 0)
            continue;
        const auto [cb, stmt] = sites.site(i);

        // Walk the unique-caller chain outward, then emit it rootmost
        // first. A visited guard cuts recursive chains at the repeat.
        std::vector<std::uint16_t> chain{cb};
        std::vector<bool> seen(program.numCodeBlocks(), false);
        seen[cb] = true;
        std::uint16_t cur = cb;
        while (callers[cur] != kNoCaller &&
               callers[cur] != kManyCallers && !seen[callers[cur]])
        {
            cur = callers[cur];
            seen[cur] = true;
            chain.push_back(cur);
        }
        for (std::size_t f = chain.size(); f-- > 0;)
            os << program.codeBlock(chain[f]).name << ';';
        // The collapsed format splits stack from weight on the last
        // space, so the leaf frame must stay space-free.
        const Instruction &in = program.instruction(cb, stmt);
        os << program.codeBlock(cb).name << ':' << stmt << '('
           << opcodeName(in.op) << ") " << weight << '\n';
    }
}

} // namespace graph

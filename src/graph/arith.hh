/**
 * @file
 * Scalar operator semantics shared by every execution tier.
 *
 * The firing rules for the arithmetic, relational, and boolean
 * operators live here (not in exec.cc) so the token-at-a-time
 * interpreter (graph::Executor) and the compiled emulator (src/emul)
 * evaluate *the same expressions* — bit-exact agreement between the
 * tiers is then a property of the code, not of two implementations
 * kept in sync by hand.
 *
 * Semantics notes (inherited from the original Executor):
 *  - int ∘ int stays int for ADD/SUB/MUL/MOD, and DIV of two ints is
 *    integer division; any real operand promotes the whole operation
 *    to double.
 *  - the relational orderings always compare as double (ints widen),
 *    and EQ/NE compare numerically when both sides are numeric, else
 *    by exact (same-type) equality.
 */

#ifndef TTDA_GRAPH_ARITH_HH
#define TTDA_GRAPH_ARITH_HH

#include "common/logging.hh"
#include "graph/opcode.hh"
#include "graph/value.hh"

namespace graph
{

/** ADD/SUB/MUL/MOD over machine integers. */
inline std::int64_t
arithInt(Opcode op, std::int64_t x, std::int64_t y)
{
    switch (op) {
      case Opcode::Add: return x + y;
      case Opcode::Sub: return x - y;
      case Opcode::Mul: return x * y;
      case Opcode::Div:
        SIM_ASSERT_MSG(y != 0, "integer division by zero");
        return x / y;
      case Opcode::Mod:
        SIM_ASSERT_MSG(y != 0, "modulo by zero");
        return x % y;
      default:
        sim::panic("arithInt called with non-arithmetic opcode {}",
                   opcodeName(op));
    }
}

/** ADD/SUB/MUL/DIV over doubles (MOD requires integers). */
inline double
arithReal(Opcode op, double x, double y)
{
    switch (op) {
      case Opcode::Add: return x + y;
      case Opcode::Sub: return x - y;
      case Opcode::Mul: return x * y;
      case Opcode::Div: return x / y;
      case Opcode::Mod:
        sim::panic("MOD requires integer operands");
      default:
        sim::panic("arithReal called with non-arithmetic opcode {}",
                   opcodeName(op));
    }
}

/** The relational orderings, always evaluated over doubles. */
inline bool
compareReal(Opcode op, double x, double y)
{
    switch (op) {
      case Opcode::Lt: return x < y;
      case Opcode::Le: return x <= y;
      case Opcode::Gt: return x > y;
      case Opcode::Ge: return x >= y;
      case Opcode::Eq: return x == y;
      case Opcode::Ne: return x != y;
      default:
        sim::panic("compareReal called with non-relational opcode {}",
                   opcodeName(op));
    }
}

/** Full dynamically-typed ADD/SUB/MUL/DIV/MOD. */
inline Value
arithValue(Opcode op, const Value &a, const Value &b)
{
    if (a.isInt() && b.isInt())
        return Value{arithInt(op, a.asInt(), b.asInt())};
    return Value{arithReal(op, a.asReal(), b.asReal())};
}

/** Full dynamically-typed LT/LE/GT/GE/EQ/NE. */
inline Value
compareValue(Opcode op, const Value &a, const Value &b)
{
    // EQ/NE work on any same-typed pair; the orderings are numeric.
    if (op == Opcode::Eq || op == Opcode::Ne) {
        bool eq;
        if (a.isNumeric() && b.isNumeric())
            eq = a.asReal() == b.asReal();
        else
            eq = a == b;
        return Value{op == Opcode::Eq ? eq : !eq};
    }
    return Value{compareReal(op, a.asReal(), b.asReal())};
}

/** Dynamically-typed NEG. */
inline Value
negValue(const Value &a)
{
    return a.isInt() ? Value{-a.asInt()} : Value{-a.asReal()};
}

} // namespace graph

#endif // TTDA_GRAPH_ARITH_HH

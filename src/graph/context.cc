#include "graph/context.hh"

#include "common/logging.hh"

namespace graph
{

ContextManager::ContextManager()
{
    live_.emplace(rootContext, ContextInfo{});
}

ContextId
ContextManager::intern(const Tag &caller, std::uint32_t site,
                       std::uint16_t target_cb,
                       const std::vector<Dest> &result_dests,
                       std::uint16_t expected_exits)
{
    const Key key{caller.ctx, caller.iter, site};
    if (auto it = interned_.find(key); it != interned_.end())
        return it->second;

    const ContextId id = next_++;
    SIM_ASSERT_MSG(next_ != 0, "context id space exhausted");
    interned_.emplace(key, id);
    ContextInfo info;
    info.caller = caller;
    info.targetCb = target_cb;
    info.resultDests = result_dests;
    info.remainingExits = expected_exits;
    live_.emplace(id, std::move(info));
    created_.inc();
    peak_ = std::max<std::uint64_t>(peak_, live_.size());
    return id;
}

void
ContextManager::noteExit(ContextId id)
{
    auto it = live_.find(id);
    SIM_ASSERT_MSG(it != live_.end(), "exit from dead context {}", id);
    if (it->second.remainingExits == 0)
        return; // untracked loop: never reclaimed
    if (--it->second.remainingExits == 0) {
        live_.erase(it);
        released_.inc();
    }
}

const ContextInfo &
ContextManager::info(ContextId id) const
{
    auto it = live_.find(id);
    SIM_ASSERT_MSG(it != live_.end(),
                   "lookup of dead or unknown context {}", id);
    return it->second;
}

void
ContextManager::release(ContextId id)
{
    SIM_ASSERT_MSG(id != rootContext, "cannot release the root context");
    live_.erase(id);
    released_.inc();
}

std::uint32_t
ContextManager::rootIter(ContextId id) const
{
    std::uint32_t iter = 1;
    while (id != rootContext) {
        auto it = live_.find(id);
        if (it == live_.end())
            return 0; // released along the chain: unattributable
        iter = it->second.caller.iter;
        id = it->second.caller.ctx;
    }
    return iter;
}

void
ContextManager::reset()
{
    interned_.clear();
    live_.clear();
    live_.emplace(rootContext, ContextInfo{});
    next_ = rootContext + 1;
    peak_ = 1;
    // The counters too: a reset machine's stats must be bit-identical
    // to a freshly constructed one's.
    created_.reset();
    released_.reset();
}

} // namespace graph

#include "graph/value.hh"

#include <sstream>

namespace graph
{

std::string
Value::toString() const
{
    std::ostringstream os;
    os << *this;
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const Value &v)
{
    std::visit(
        [&os](const auto &alt) {
            using T = std::decay_t<decltype(alt)>;
            if constexpr (std::is_same_v<T, std::monostate>) {
                os << "unit";
            } else if constexpr (std::is_same_v<T, bool>) {
                os << (alt ? "true" : "false");
            } else if constexpr (std::is_same_v<T, std::int64_t>) {
                os << alt;
            } else if constexpr (std::is_same_v<T, double>) {
                os << alt;
            } else if constexpr (std::is_same_v<T, FnRef>) {
                os << "fn<cb" << alt.codeBlock << ">";
            } else {
                os << "iptr<" << alt.base << "+" << alt.length << ">";
            }
        },
        v.rep());
    return os;
}

} // namespace graph

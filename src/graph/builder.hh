/**
 * @file
 * BlockBuilder: a small construction API for dataflow code blocks.
 *
 * Used by tests, examples, and the ID compiler's code generator.
 * Instructions are appended with add(); edges are wired with to();
 * build() installs the block into the program (validate() afterwards
 * catches anything mis-wired).
 */

#ifndef TTDA_GRAPH_BUILDER_HH
#define TTDA_GRAPH_BUILDER_HH

#include <string>
#include <utility>

#include "common/logging.hh"
#include "graph/program.hh"

namespace graph
{

/** Builder for one code block. */
class BlockBuilder
{
  public:
    /**
     * Start a block. Creates numParams IDENT receiver instructions
     * (statements 0..numParams-1) per the calling convention.
     */
    BlockBuilder(Program &program, std::string name,
                 std::uint16_t num_params)
        : program_(program)
    {
        cb_.name = std::move(name);
        cb_.numParams = num_params;
        for (std::uint16_t p = 0; p < num_params; ++p) {
            Instruction in;
            in.op = Opcode::Ident;
            in.nt = 1;
            in.label = sim::format("param{}", p);
            cb_.instrs.push_back(std::move(in));
        }
    }

    /** Append an instruction; returns its statement number. */
    std::uint16_t
    add(Opcode op, std::uint8_t nt, std::string label = {})
    {
        Instruction in;
        in.op = op;
        in.nt = nt;
        in.label = std::move(label);
        cb_.instrs.push_back(std::move(in));
        return static_cast<std::uint16_t>(cb_.instrs.size() - 1);
    }

    /** Attach a compile-time literal operand to `stmt`. */
    BlockBuilder &
    constant(std::uint16_t stmt, Value v)
    {
        instr(stmt).constant = std::move(v);
        return *this;
    }

    /** Wire an edge from `from` to (`to_stmt`, `port`). For SWITCH,
     *  on_false selects the false-side destination list. */
    BlockBuilder &
    to(std::uint16_t from, std::uint16_t to_stmt, std::uint8_t port,
       bool on_false = false)
    {
        Instruction &in = instr(from);
        (on_false ? in.falseDests : in.dests).push_back(
            Dest{to_stmt, port});
        return *this;
    }

    /** Wire a LoopExit/Return-style edge whose destination lies in the
     *  caller's code block. */
    BlockBuilder &
    toCaller(std::uint16_t from, std::uint16_t caller_stmt,
             std::uint8_t port)
    {
        Instruction &in = instr(from);
        in.destsInCaller = true;
        in.dests.push_back(Dest{caller_stmt, port});
        return *this;
    }

    /** Configure a LoopEntry: the loop block it enters and its site
     *  id (must be unique among the block's loops). */
    BlockBuilder &
    loop(std::uint16_t l_stmt, std::uint16_t target_cb,
         std::uint16_t site)
    {
        Instruction &in = instr(l_stmt);
        SIM_ASSERT(in.op == Opcode::LoopEntry);
        in.targetCb = target_cb;
        in.site = site;
        return *this;
    }

    /** Declare the LoopExit count (context reclamation; see
     *  CodeBlock::numExits). */
    BlockBuilder &
    numExits(std::uint16_t n)
    {
        cb_.numExits = n;
        return *this;
    }

    /** Record the loop schema (predicate statement + per-variable
     *  SWITCHes) on the block — the schedulable-form export consumed
     *  by the compiled emulator (see CodeBlock::loopPredicate). */
    BlockBuilder &
    loopSchema(std::uint16_t pred_stmt,
               std::vector<std::uint16_t> switches)
    {
        cb_.loopPredicate = pred_stmt;
        cb_.loopSwitches = std::move(switches);
        return *this;
    }

    /** Relabel an already-added instruction. */
    BlockBuilder &
    label(std::uint16_t stmt, std::string text)
    {
        instr(stmt).label = std::move(text);
        return *this;
    }

    std::uint16_t numInstrs() const
    {
        return static_cast<std::uint16_t>(cb_.instrs.size());
    }

    /** Install the block into the program; returns its id. */
    std::uint16_t
    build()
    {
        SIM_ASSERT_MSG(!built_, "block '{}' already built", cb_.name);
        built_ = true;
        return program_.addCodeBlock(std::move(cb_));
    }

    /** Install the block into a previously reserved id. */
    std::uint16_t
    buildInto(std::uint16_t id)
    {
        SIM_ASSERT_MSG(!built_, "block '{}' already built", cb_.name);
        built_ = true;
        program_.fillCodeBlock(id, std::move(cb_));
        return id;
    }

  private:
    Instruction &
    instr(std::uint16_t stmt)
    {
        SIM_ASSERT_MSG(stmt < cb_.instrs.size(),
                       "builder: no statement {} in '{}'", stmt,
                       cb_.name);
        return cb_.instrs[stmt];
    }

    Program &program_;
    CodeBlock cb_;
    bool built_ = false;
};

} // namespace graph

#endif // TTDA_GRAPH_BUILDER_HH

/**
 * @file
 * Tokens — paper Section 2.2.2: <d, PE, tag, nt, port, data>.
 *
 * d classifies the token:
 *   d=0 (Normal)  — an operand bound for an instruction; routed through
 *                   waiting-matching when nt >= 2.
 *   d=1 (IsFetch/IsStore/IsAlloc) — an I-structure storage operation
 *                   bound for an I-structure controller (Section 2.2.4).
 *   d=2 (Output)  — bound for the PE controller; here, program results
 *                   delivered to the host.
 *
 * The PE field is filled in by the output section of the producing
 * processing element (or by the emulator's trivial mapper).
 */

#ifndef TTDA_GRAPH_TOKEN_HH
#define TTDA_GRAPH_TOKEN_HH

#include <cstdint>
#include <ostream>

#include "common/types.hh"
#include "graph/tag.hh"
#include "graph/value.hh"

namespace graph
{

/** The d discriminator of a token. */
enum class TokenKind : std::uint8_t
{
    Normal,  //!< d=0: ordinary operand token
    IsFetch, //!< d=1: read `addr`, reply to `reply`
    IsStore, //!< d=1: write `data` to `addr`
    IsAlloc, //!< d=1: allocate asInt(data) cells, reply IPtr to `reply`
    IsAppend, //!< d=1: copy the array at `addr`, replace one element
    Output,  //!< d=2: program result for the PE controller / host
};

/** A token in flight. */
struct Token
{
    TokenKind kind = TokenKind::Normal;
    sim::NodeId pe = sim::invalidNode; //!< destination PE (filled late)

    // Normal/Output tokens: the target activity and operand slot.
    Tag tag;
    std::uint8_t port = 0;
    std::uint8_t nt = 1;
    Value data;

    // I-structure tokens.
    std::uint64_t addr = 0;
    //! IsAppend: packed (source length << 32) | element index.
    std::uint64_t aux = 0;
    Continuation reply; //!< IsFetch/IsAlloc/IsAppend: reply target

    // Lifecycle bookkeeping (observability only — never consulted by
    // firing semantics or routing). Deliberately 32-bit: the stamps
    // are read back only as short deltas (now - born) and trace
    // labels, and tokens are copied on the fire hot path — these two
    // fields must not grow the struct past one extra word.
    std::uint32_t seq = 0;  //!< machine-wide creation sequence number
    std::uint32_t born = 0; //!< cycle (low bits) the stage emitted it
};

std::ostream &operator<<(std::ostream &os, const Token &t);

/**
 * Continuation for I-structure storage replies. A satisfied read is
 * normally forwarded to an instruction (`cont`), but a copy in
 * progress (APPEND of a not-yet-written cell) instead forwards the
 * datum to a *cell* of the new structure — non-strict functional
 * arrays fall out of the same deferral machinery.
 */
struct IsCont
{
    bool toCell = false;
    std::uint32_t born = 0;       //!< cycle (low bits) the read was
                                  //!< issued (read-latency stat)
    Continuation cont{};          //!< !toCell: the reader instruction
    std::uint64_t cellAddr = 0;   //!< toCell: global target cell
};

} // namespace graph

#endif // TTDA_GRAPH_TOKEN_HH

/**
 * @file
 * Machine fleets: warm simulator replicas serving independent jobs.
 *
 * The generic engine (sim::Fleet) knows nothing about machines; this
 * layer binds it to the tiers:
 *
 *  - TtdaFleet — W warm ttda::Machine replicas, constructed once and
 *    recycled per job through Machine::reset(). A job is a seeded
 *    (workload, args, fault-plan) tuple: one serving epoch — submit
 *    every request, serve() to quiescence, harvest outputs, counters,
 *    the latency histogram, and (optionally) the stats JSON. Because
 *    reset()-then-run is bit-identical to a fresh machine and every
 *    replica is constructed from the same config, *which* replica
 *    serves a job cannot affect its result — the fleet's determinism
 *    contract reduces to the machine's reset contract plus per-job
 *    seed derivation (sim::deriveJobSeed; fault plans with seed 0 get
 *    their injector seed from (machine seed, job id), never from the
 *    worker).
 *
 *  - VnFleet — the von Neumann tier has no reset() fast path, so its
 *    fleet constructs a fresh vn::VnMachine per job inside the worker.
 *    Still deterministic: construction is pure, jobs are independent.
 *
 * Results come back in job-index order; merged views (aggregate
 *  latency) fold per-job histograms in that order, so aggregates are
 * as bit-identical as the per-job rows.
 */

#ifndef TTDA_SERVE_FLEET_HH
#define TTDA_SERVE_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fleet.hh"
#include "common/stats.hh"
#include "ttda/machine.hh"
#include "vn/machine.hh"
#include "workloads/vn_serve.hh"

namespace serve
{

/** Shared fleet knobs (both tiers). */
struct FleetConfig
{
    /** Workers, including the calling thread. */
    unsigned workers = 1;
    /** Job-queue lanes; 0 = one per worker. */
    std::size_t queueShards = 0;
    /** WorkerPool spin budget (kSpinAuto adapts to the host). */
    int spinBudget = sim::WorkerPool::kSpinAuto;
    /** Capture each job's dumpStatsJson() into the result (TtdaFleet
     *  only) — the bit-identity witness; costs a serialization per
     *  job. */
    bool captureStatsJson = false;
};

/** One open-loop request inside a job. */
struct FleetRequest
{
    std::vector<graph::Value> args;
    sim::Cycle arrival = 0;
};

/** One fleet job: a whole serving epoch for one machine replica. */
struct FleetJob
{
    std::uint16_t cb = 0; //!< code block every request applies
    std::vector<FleetRequest> requests; //!< arrival-sorted
    /** Per-job fault plan. Empty = faultless. seed == 0 derives the
     *  injector seed from (machine seed, job index) — per job id,
     *  never per worker. */
    sim::fault::FaultPlan faults;
};

/** Everything a job's epoch produced, in deterministic form. */
struct FleetJobResult
{
    std::vector<ttda::OutputRecord> outputs;
    sim::Cycle cycles = 0;
    bool deadlocked = false;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t watermarkHits = 0;
    sim::Histogram latency{16.0, 4096}; //!< Machine::requestLatency
    std::string statsJson; //!< when FleetConfig::captureStatsJson
    /** Which worker served the job — host-order observability, never
     *  part of the deterministic result fields above. */
    unsigned worker = 0;
};

/**
 * A pool of warm ttda::Machine replicas behind a sim::Fleet.
 *
 * Replicas (one per worker) are built once from (program, config) —
 * observability sinks (trace, tracer, metrics) are forced off, since
 * W replicas interleaving into one stream would be host-ordered — and
 * reused across jobs and across run() batches via reset().
 */
class TtdaFleet
{
  public:
    TtdaFleet(const graph::Program &program,
              const ttda::MachineConfig &machine,
              const FleetConfig &cfg = {});

    /** Serve every job; results[j] belongs to jobs[j]. Bit-identical
     *  for any worker count / steal order. */
    std::vector<FleetJobResult> run(const std::vector<FleetJob> &jobs);

    unsigned workers() const { return fleet_.workers(); }
    /** Host-order observability from the last run() (informational). */
    std::uint64_t steals() const { return fleet_.steals(); }
    const std::vector<std::uint64_t> &jobsPerWorker() const
    {
        return fleet_.jobsPerWorker();
    }

    /** Fold the per-job latency histograms in job-index order: the
     *  fleet-wide distribution, deterministic like its inputs. */
    static sim::Histogram
    mergedLatency(const std::vector<FleetJobResult> &results);

  private:
    FleetConfig cfg_;
    sim::Fleet fleet_;
    std::vector<std::unique_ptr<ttda::Machine>> replicas_;
};

/** One von Neumann fleet job: a request list for a fresh machine. */
struct VnFleetJob
{
    std::vector<workloads::VnRequest> requests; //!< arrival-sorted
};

/** A von Neumann epoch's deterministic result. */
struct VnFleetJobResult
{
    sim::Cycle cycles = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    sim::Histogram latency{16.0, 4096}; //!< VnServeDriver::latency
};

/**
 * The von Neumann tier's fleet: same engine, fresh machine per job
 * (vn::VnMachine has no warm-reset path — the contrast is part of the
 * experiment: the dataflow tier's reset() is what makes warm replica
 * reuse cheap).
 */
class VnFleet
{
  public:
    VnFleet(const vn::VnMachineConfig &machine,
            const FleetConfig &cfg = {});

    std::vector<VnFleetJobResult>
    run(const std::vector<VnFleetJob> &jobs);

    unsigned workers() const { return fleet_.workers(); }
    std::uint64_t steals() const { return fleet_.steals(); }

  private:
    FleetConfig cfg_;
    sim::Fleet fleet_;
    vn::VnMachineConfig machineCfg_;
};

} // namespace serve

#endif // TTDA_SERVE_FLEET_HH

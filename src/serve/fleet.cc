#include "serve/fleet.hh"

#include <sstream>
#include <utility>

namespace serve
{

namespace
{

sim::Fleet::Config
engineConfig(const FleetConfig &cfg)
{
    sim::Fleet::Config ec;
    ec.workers = cfg.workers;
    ec.queueShards = cfg.queueShards;
    ec.spinBudget = cfg.spinBudget;
    return ec;
}

/** Resolve a job's fault plan: seed 0 becomes a (machine seed, job
 *  id) derivation so two jobs with the same plan shape still draw
 *  independent fault streams — and the derivation is stable whatever
 *  worker picks the job up. */
sim::fault::FaultPlan
jobPlan(const FleetJob &job, std::size_t jobIndex,
        std::uint64_t machineSeed)
{
    sim::fault::FaultPlan plan = job.faults;
    if (plan.enabled() && plan.seed == 0)
        plan.seed = sim::deriveJobSeed(machineSeed, jobIndex);
    return plan;
}

} // namespace

TtdaFleet::TtdaFleet(const graph::Program &program,
                     const ttda::MachineConfig &machine,
                     const FleetConfig &cfg)
    : cfg_(cfg), fleet_(engineConfig(cfg))
{
    ttda::MachineConfig replicaCfg = machine;
    // W replicas interleaving events into one sink would be
    // host-ordered; fleets run dark and report deterministic results.
    replicaCfg.trace = nullptr;
    replicaCfg.tracer = nullptr;
    replicaCfg.metrics = nullptr;
    replicas_.reserve(fleet_.workers());
    for (unsigned w = 0; w < fleet_.workers(); ++w)
        replicas_.push_back(
            std::make_unique<ttda::Machine>(program, replicaCfg));
}

std::vector<FleetJobResult>
TtdaFleet::run(const std::vector<FleetJob> &jobs)
{
    std::vector<FleetJobResult> results(jobs.size());
    const std::uint64_t machineSeed =
        replicas_.empty() ? 0 : replicas_[0]->config().seed;

    fleet_.run(jobs.size(), [&](unsigned worker, std::size_t j) {
        ttda::Machine &m = *replicas_[worker];
        const FleetJob &job = jobs[j];
        m.reset();
        m.setFaultPlan(jobPlan(job, j, machineSeed));
        for (const FleetRequest &req : job.requests)
            m.submit(job.cb, req.args, req.arrival);

        FleetJobResult &r = results[j];
        r.worker = worker;
        r.outputs = m.serve();
        r.cycles = m.cycles();
        r.deadlocked = m.deadlocked();
        r.submitted = m.requestsSubmitted();
        r.completed = m.requestsCompleted();
        r.watermarkHits = m.watermarkHits();
        r.latency = m.requestLatency();
        if (cfg_.captureStatsJson) {
            std::ostringstream os;
            m.dumpStatsJson(os);
            r.statsJson = os.str();
        }
    });
    return results;
}

sim::Histogram
TtdaFleet::mergedLatency(const std::vector<FleetJobResult> &results)
{
    sim::Histogram merged;
    for (const FleetJobResult &r : results)
        merged.merge(r.latency);
    return merged;
}

VnFleet::VnFleet(const vn::VnMachineConfig &machine,
                 const FleetConfig &cfg)
    : cfg_(cfg), fleet_(engineConfig(cfg)), machineCfg_(machine)
{
    machineCfg_.metrics = nullptr; // same darkness rule as TtdaFleet
}

std::vector<VnFleetJobResult>
VnFleet::run(const std::vector<VnFleetJob> &jobs)
{
    std::vector<VnFleetJobResult> results(jobs.size());

    fleet_.run(jobs.size(), [&](unsigned, std::size_t j) {
        vn::VnMachine m(machineCfg_);
        workloads::VnServeDriver drv(m, jobs[j].requests);
        drv.attach();
        m.run();

        VnFleetJobResult &r = results[j];
        r.cycles = m.cycles();
        r.submitted = drv.submitted();
        r.completed = drv.completed();
        r.latency = drv.latency();
    });
    return results;
}

} // namespace serve

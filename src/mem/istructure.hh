/**
 * @file
 * I-Structure Storage (paper Section 2.1, Figure 2-1).
 *
 * Each memory cell carries presence bits with three states:
 *
 *   Empty    — never written; a read must wait.
 *   Deferred — unwritten, and one or more read requests are queued on
 *              the cell's deferred-read list.
 *   Present  — written; reads are satisfied immediately.
 *
 * A read of an Empty/Deferred cell is *put aside* on the deferred list
 * (the paper's key difference from the HEP's busy-waiting full/empty
 * bits). The matching write forwards the datum to every deferred reader
 * as well as storing it. A second write to the same cell violates the
 * single-assignment discipline and is reported, not silently applied.
 *
 * Two layers are provided:
 *  - IStructure<Cont>:          the functional storage itself;
 *  - IStructureController<Cont>: a cycle-timed controller in front of
 *    it, with the paper's cost model (a read is as efficient as an
 *    ordinary memory read; a write takes twice as long because the
 *    presence bits are examined first).
 *
 * Cont is the requester continuation — for the TTDA it is the
 * destination instruction's tag; tests use simple integers.
 */

#ifndef TTDA_MEM_ISTRUCTURE_HH
#define TTDA_MEM_ISTRUCTURE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/ringqueue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/word.hh"

namespace mem
{

/** Presence-bit state of an I-structure cell. */
enum class Presence : std::uint8_t { Empty, Deferred, Present };

/** Statistics for one I-structure storage unit. */
struct IStructureStats
{
    sim::Counter fetches;          //!< read requests received
    sim::Counter fetchesDeferred;  //!< reads that had to wait
    sim::Counter stores;           //!< write requests received
    sim::Counter deferredServed;   //!< deferred reads satisfied by writes
    sim::Counter multipleWrites;   //!< single-assignment violations
    sim::Accumulator deferredListLen; //!< list length sampled at writes
};

/**
 * The storage proper: presence-bit cells plus deferred-read lists.
 */
template <typename Cont, typename ValueT = Word>
class IStructure
{
  public:
    using ValueType = ValueT;

    explicit IStructure(std::size_t words)
        : words_(words),
          chunks_((words + kChunkWords - 1) / kChunkWords)
    {
    }

    std::size_t size() const { return words_; }

    /**
     * Allocate `n` fresh (Empty) words; returns the base address.
     * Allocation is a bump pointer — the paper's machine allocates
     * structure storage up front per code block invocation.
     */
    std::uint64_t
    allocate(std::size_t n)
    {
        const std::uint64_t base = allocPtr_;
        if (allocPtr_ + n > words_)
            return ~std::uint64_t{0}; // out of storage; caller checks
        allocPtr_ += n;
        return base;
    }

    /** Remaining unallocated words. */
    std::size_t freeWords() const { return words_ - allocPtr_; }

    /**
     * Process a read request for `addr` on behalf of continuation `c`.
     *
     * @param out  receives (continuation, value) for satisfied reads
     * @return true if satisfied now, false if deferred
     */
    bool
    fetch(std::uint64_t addr, Cont c,
          std::vector<std::pair<Cont, ValueT>> &out)
    {
        Cell &cell = at(addr);
        stats_.fetches.inc();
        if (cell.presence == Presence::Present) {
            out.emplace_back(std::move(c), cell.value);
            return true;
        }
        cell.presence = Presence::Deferred;
        cell.deferred.push_back(std::move(c));
        stats_.fetchesDeferred.inc();
        return false;
    }

    /**
     * Process a write of `value` to `addr`: store it, set the presence
     * bits, and forward the datum to every deferred reader.
     *
     * @param out  receives (continuation, value) for each deferred read
     * @return false if the cell was already written (single-assignment
     *         violation; the store is ignored)
     */
    bool
    store(std::uint64_t addr, ValueT value,
          std::vector<std::pair<Cont, ValueT>> &out)
    {
        Cell &cell = at(addr);
        stats_.stores.inc();
        if (cell.presence == Presence::Present) {
            stats_.multipleWrites.inc();
            return false;
        }
        stats_.deferredListLen.sample(
            static_cast<double>(cell.deferred.size()));
        cell.value = value;
        cell.presence = Presence::Present;
        for (auto &c : cell.deferred) {
            out.emplace_back(std::move(c), value);
            stats_.deferredServed.inc();
        }
        cell.deferred.clear();
        return true;
    }

    /** Presence state of a cell (for tests and controllers). */
    Presence
    presence(std::uint64_t addr) const
    {
        return at(addr).presence;
    }

    /** Value of a Present cell. */
    ValueT
    peek(std::uint64_t addr) const
    {
        const Cell &cell = at(addr);
        return cell.value;
    }

    /** Reset a range back to Empty (storage reuse between runs). */
    void
    clear(std::uint64_t addr, std::size_t n)
    {
        SIM_ASSERT(addr + n <= words_);
        std::uint64_t a = addr;
        const std::uint64_t end = addr + n;
        while (a < end) {
            if (!chunks_[a / kChunkWords]) {
                // An unmaterialized chunk is already all-Empty.
                a = (a / kChunkWords + 1) * kChunkWords;
                continue;
            }
            Cell &cell = at(a);
            cell.presence = Presence::Empty;
            cell.value = ValueT{};
            cell.deferred.clear();
            ++a;
        }
    }

    /**
     * Return the whole storage to its just-constructed state while
     * keeping every materialized chunk (and each cell's deferred-list
     * capacity) alive. The serving fast path resets a machine between
     * epochs; re-deallocating and re-materializing the chunks was
     * exactly the construction cost chunking removed.
     */
    void
    reset()
    {
        for (auto &chunk : chunks_) {
            if (!chunk)
                continue;
            for (std::size_t i = 0; i < kChunkWords; ++i) {
                chunk[i].presence = Presence::Empty;
                chunk[i].value = ValueT{};
                chunk[i].deferred.clear();
            }
        }
        allocPtr_ = 0;
        stats_.fetches.reset();
        stats_.fetchesDeferred.reset();
        stats_.stores.reset();
        stats_.deferredServed.reset();
        stats_.multipleWrites.reset();
        stats_.deferredListLen.reset();
    }

    /** Number of reads currently parked on deferred lists. */
    std::size_t
    outstandingReads() const
    {
        std::size_t n = 0;
        for (const auto &chunk : chunks_) {
            if (!chunk)
                continue;
            for (std::size_t i = 0; i < kChunkWords; ++i)
                n += chunk[i].deferred.size();
        }
        return n;
    }

    /** The continuations parked on one cell's deferred-read list
     *  (deadlock forensics: *who* is waiting, not just how many). */
    const std::vector<Cont> &
    deferredList(std::uint64_t addr) const
    {
        return at(addr).deferred;
    }

    /** Local addresses that still have parked readers (diagnosis of
     *  read-never-written deadlocks), capped at `limit` entries. */
    std::vector<std::uint64_t>
    deferredAddresses(std::size_t limit = 16) const
    {
        std::vector<std::uint64_t> out;
        for (std::size_t c = 0;
             c < chunks_.size() && out.size() < limit; ++c)
        {
            if (!chunks_[c])
                continue;
            for (std::size_t i = 0;
                 i < kChunkWords && out.size() < limit; ++i)
            {
                if (!chunks_[c][i].deferred.empty())
                    out.push_back(c * kChunkWords + i);
            }
        }
        return out;
    }

    const IStructureStats &stats() const { return stats_; }

    /** Serialize the run state — allocation pointer, stats, and every
     *  non-Empty cell with its deferred-read list — for checkpointing.
     *  W is a snapshot writer; cell values and continuations are
     *  encoded by ADL `snapSave` overloads resolved at instantiation. */
    template <typename W>
    void
    save(W &w) const
    {
        w.u64(allocPtr_);
        w.u64(stats_.fetches.value());
        w.u64(stats_.fetchesDeferred.value());
        w.u64(stats_.stores.value());
        w.u64(stats_.deferredServed.value());
        w.u64(stats_.multipleWrites.value());
        w.f64(stats_.deferredListLen.sum());
        w.u64(stats_.deferredListLen.count());
        w.f64(stats_.deferredListLen.min());
        w.f64(stats_.deferredListLen.max());
        std::uint64_t live = 0;
        forEachLiveCell([&](std::uint64_t, const Cell &) { ++live; });
        w.u64(live);
        forEachLiveCell([&](std::uint64_t addr, const Cell &cell) {
            w.u64(addr);
            w.u8(static_cast<std::uint8_t>(cell.presence));
            snapSave(w, cell.value);
            w.u64(cell.deferred.size());
            for (const Cont &c : cell.deferred)
                snapSave(w, c);
        });
    }

    /** Rebuild the run state from a save() stream onto a reset
     *  storage. Unmaterialized chunks stay unmaterialized unless the
     *  stream touches them; addresses are validated against the
     *  configured size (the bytes are untrusted). */
    template <typename R>
    void
    load(R &r)
    {
        reset();
        allocPtr_ = r.u64();
        if (allocPtr_ > words_)
            r.fail("i-structure allocation pointer beyond size");
        auto counter = [&r](sim::Counter &c) {
            c.reset();
            c.inc(r.u64());
        };
        counter(stats_.fetches);
        counter(stats_.fetchesDeferred);
        counter(stats_.stores);
        counter(stats_.deferredServed);
        counter(stats_.multipleWrites);
        const double sum = r.f64();
        const std::uint64_t count = r.u64();
        const double mn = r.f64();
        const double mx = r.f64();
        stats_.deferredListLen.restore(sum, count, mn, mx);
        const std::uint64_t live = r.u64();
        for (std::uint64_t i = 0; i < live; ++i) {
            const std::uint64_t addr = r.u64();
            if (addr >= words_)
                r.fail("i-structure cell address out of range");
            Cell &cell = at(addr);
            const std::uint8_t p = r.u8();
            if (p > static_cast<std::uint8_t>(Presence::Present))
                r.fail("bad i-structure presence state");
            cell.presence = static_cast<Presence>(p);
            snapLoad(r, cell.value);
            const std::uint64_t nd = r.u64();
            for (std::uint64_t k = 0; k < nd; ++k) {
                Cont c{};
                snapLoad(r, c);
                cell.deferred.push_back(std::move(c));
            }
        }
    }

  private:
    struct Cell
    {
        Presence presence = Presence::Empty;
        ValueT value{};
        std::vector<Cont> deferred;
    };

    /**
     * Cells live in fixed-size chunks materialized on first write-side
     * touch. The bump-pointer allocator means a run addresses only a
     * prefix of the configured words, so eagerly constructing (and
     * later destructing) every cell — each holding a deferred-list
     * vector — used to dominate Machine construction time. A null
     * chunk reads as all-Empty.
     */
    static constexpr std::size_t kChunkWords = 4096;

    /** Visit every materialized cell that differs from the default
     *  all-Empty state, in ascending address order. */
    template <typename F>
    void
    forEachLiveCell(F &&f) const
    {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            if (!chunks_[c])
                continue;
            for (std::size_t i = 0; i < kChunkWords; ++i) {
                const Cell &cell = chunks_[c][i];
                if (cell.presence != Presence::Empty ||
                    !cell.deferred.empty())
                    f(c * kChunkWords + i, cell);
            }
        }
    }

    Cell &
    at(std::uint64_t addr)
    {
        SIM_ASSERT_MSG(addr < words_,
                       "i-structure address {} beyond size {}", addr,
                       words_);
        auto &chunk = chunks_[addr / kChunkWords];
        if (!chunk)
            chunk = std::make_unique<Cell[]>(kChunkWords);
        return chunk[addr % kChunkWords];
    }

    const Cell &
    at(std::uint64_t addr) const
    {
        SIM_ASSERT_MSG(addr < words_,
                       "i-structure address {} beyond size {}", addr,
                       words_);
        const auto &chunk = chunks_[addr / kChunkWords];
        if (!chunk) {
            static const Cell kEmpty{};
            return kEmpty;
        }
        return chunk[addr % kChunkWords];
    }

    std::size_t words_;
    std::vector<std::unique_ptr<Cell[]>> chunks_;
    std::uint64_t allocPtr_ = 0;
    IStructureStats stats_;
};

/** A request presented to an I-structure controller. */
template <typename Cont, typename ValueT = Word>
struct IStructureRequest
{
    enum class Kind : std::uint8_t { Fetch, Store };

    Kind kind = Kind::Fetch;
    std::uint64_t addr = 0;
    ValueT value{};  //!< stores only
    Cont cont{};     //!< fetches only: where the datum must go
};

/**
 * Cycle-timed controller in front of an IStructure.
 *
 * Service costs model the paper's analysis: a read occupies the
 * controller for `readCost` cycles (default 1, "as efficient as in a
 * traditional memory"), a write for `writeCost` cycles (default 2,
 * "twice as long, due to the prefetching of presence bits").
 */
template <typename Cont, typename ValueT = Word>
class IStructureController
{
  public:
    using Request = IStructureRequest<Cont, ValueT>;

    IStructureController(std::size_t words, sim::Cycle read_cost = 1,
                         sim::Cycle write_cost = 2)
        : storage_(words), readCost_(read_cost), writeCost_(write_cost)
    {
        SIM_ASSERT(read_cost >= 1 && write_cost >= 1);
    }

    IStructure<Cont, ValueT> &storage() { return storage_; }
    const IStructure<Cont, ValueT> &storage() const { return storage_; }

    /**
     * Treat a repeated store of the *same value* into a Present cell as
     * a deduplicated retransmission rather than a single-assignment
     * violation. Lossy fabrics (sim::fault) can duplicate packets, so a
     * machine running under fault injection turns this on; the store is
     * absorbed (it still occupies the controller for writeCost cycles)
     * and counted in dupStores() instead of multipleWrites.
     */
    void enableDedup() { dedup_ = true; }

    /** Duplicate stores absorbed since construction (dedup mode). */
    std::uint64_t dupStores() const { return dupStores_.value(); }

    void
    request(Request req)
    {
        queue_.push_back(std::move(req));
    }

    /** Advance one cycle; satisfied reads appear via pollResponse(). */
    void
    step(sim::Cycle)
    {
        if (busy_ > 0) {
            --busy_;
            return;
        }
        if (queue_.empty())
            return;
        Request req = std::move(queue_.front());
        queue_.pop_front();
        std::vector<std::pair<Cont, ValueT>> out;
        if (req.kind == Request::Kind::Fetch) {
            storage_.fetch(req.addr, std::move(req.cont), out);
            busy_ = readCost_ - 1;
        } else if (dedup_ &&
                   storage_.presence(req.addr) == Presence::Present &&
                   storage_.peek(req.addr) == req.value) {
            dupStores_.inc();
            busy_ = writeCost_ - 1;
        } else {
            storage_.store(req.addr, req.value, out);
            busy_ = writeCost_ - 1;
        }
        for (auto &p : out)
            responses_.push_back(std::move(p));
    }

    std::optional<std::pair<Cont, ValueT>>
    pollResponse()
    {
        if (responses_.empty())
            return std::nullopt;
        auto r = std::move(responses_.front());
        responses_.pop_front();
        return r;
    }

    /** Idle means no queued work; deferred reads may still be parked
     *  in the storage awaiting their writes. */
    bool
    idle() const
    {
        return busy_ == 0 && queue_.empty() && responses_.empty();
    }

  private:
    IStructure<Cont, ValueT> storage_;
    sim::Cycle readCost_;
    sim::Cycle writeCost_;
    sim::Cycle busy_ = 0;
    bool dedup_ = false;
    sim::Counter dupStores_;
    sim::RingQueue<Request> queue_;
    sim::RingQueue<std::pair<Cont, ValueT>> responses_;
};

} // namespace mem

#endif // TTDA_MEM_ISTRUCTURE_HH

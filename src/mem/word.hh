/**
 * @file
 * Machine word type for the memory subsystems.
 *
 * Memory modules store raw 64-bit words; processors give them meaning.
 * Helpers bit-cast between words and doubles/signed integers so both
 * the von Neumann cores and the dataflow machine can store either.
 */

#ifndef TTDA_MEM_WORD_HH
#define TTDA_MEM_WORD_HH

#include <bit>
#include <cstdint>

namespace mem
{

/** Raw 64-bit memory word. */
using Word = std::uint64_t;

inline Word fromDouble(double d) { return std::bit_cast<Word>(d); }
inline double toDouble(Word w) { return std::bit_cast<double>(w); }
inline Word fromInt(std::int64_t v) { return static_cast<Word>(v); }
inline std::int64_t toInt(Word w) { return static_cast<std::int64_t>(w); }

} // namespace mem

#endif // TTDA_MEM_WORD_HH

#include "mem/directory.hh"

#include "common/logging.hh"

namespace mem
{

DirectoryCacheSystem::DirectoryCacheSystem(Config cfg,
                                           std::size_t memory_words)
    : cfg_(cfg), memory_(memory_words, 0),
      architectural_(memory_words, 0)
{
    SIM_ASSERT(cfg.processors >= 1 && cfg.processors <= 64);
    SIM_ASSERT(cfg.linesPerCache >= 1 && cfg.wordsPerBlock >= 1);
    caches_.resize(cfg.processors);
    for (auto &cache : caches_) {
        cache.resize(cfg.linesPerCache);
        for (auto &ln : cache)
            ln.data.assign(cfg.wordsPerBlock, 0);
    }
    directory_.resize((memory_words + cfg.wordsPerBlock - 1) /
                      cfg.wordsPerBlock);
}

std::uint64_t
DirectoryCacheSystem::blockOf(std::uint64_t addr) const
{
    return addr / cfg_.wordsPerBlock * cfg_.wordsPerBlock;
}

std::size_t
DirectoryCacheSystem::indexOf(std::uint64_t block) const
{
    return (block / cfg_.wordsPerBlock) % cfg_.linesPerCache;
}

DirectoryCacheSystem::Line &
DirectoryCacheSystem::line(std::uint32_t proc, std::uint64_t block)
{
    return caches_[proc][indexOf(block)];
}

DirectoryCacheSystem::DirEntry &
DirectoryCacheSystem::dir(std::uint64_t block)
{
    return directory_[block / cfg_.wordsPerBlock];
}

const DirectoryCacheSystem::DirEntry &
DirectoryCacheSystem::dir(std::uint64_t block) const
{
    return directory_[block / cfg_.wordsPerBlock];
}

void
DirectoryCacheSystem::writebackOwner(std::uint64_t block)
{
    DirEntry &entry = dir(block);
    SIM_ASSERT(entry.dirty);
    Line &owner_line = line(entry.owner, block);
    SIM_ASSERT(owner_line.valid() && owner_line.blockAddr == block);
    for (std::uint32_t w = 0; w < cfg_.wordsPerBlock; ++w)
        memory_[block + w] = owner_line.data[w];
    owner_line.state = LineState::Shared;
    entry.dirty = false;
    stats_.writebacks.inc();
    stats_.messages.inc(2); // recall request + data response
    stats_.remoteCacheProbes.inc();
}

sim::Cycle
DirectoryCacheSystem::evictVictim(std::uint32_t proc,
                                  std::uint64_t block)
{
    Line &ln = line(proc, block);
    if (!ln.valid() || ln.blockAddr == block)
        return 0;
    sim::Cycle cost = 0;
    DirEntry &victim = dir(ln.blockAddr);
    if (ln.state == LineState::Modified) {
        for (std::uint32_t w = 0; w < cfg_.wordsPerBlock; ++w)
            memory_[ln.blockAddr + w] = ln.data[w];
        stats_.writebacks.inc();
        stats_.messages.inc();
        cost += cfg_.networkLatency;
        victim.dirty = false;
    }
    victim.presence &= ~(1ull << proc);
    ln.state = LineState::Invalid;
    return cost;
}

DirectoryCacheSystem::ReadResult
DirectoryCacheSystem::read(std::uint32_t proc, std::uint64_t addr)
{
    SIM_ASSERT(proc < cfg_.processors && addr < memory_.size());
    const std::uint64_t block = blockOf(addr);

    ReadResult res;
    Line &ln = line(proc, block);
    if (ln.valid() && ln.blockAddr == block) {
        stats_.readHits.inc();
        res.cycles = cfg_.hitLatency;
        res.value = ln.data[addr - block];
        if (res.value != architectural_[addr])
            stats_.staleReads.inc();
        return res;
    }

    stats_.readMisses.inc();
    sim::Cycle cost = cfg_.hitLatency + cfg_.networkLatency +
                      cfg_.directoryLatency; // request to directory
    stats_.messages.inc();
    cost += evictVictim(proc, block);

    DirEntry &entry = dir(block);
    if (entry.dirty) {
        writebackOwner(block);
        cost += 2 * cfg_.networkLatency;
    }
    cost += cfg_.memoryLatency + cfg_.networkLatency; // data back
    stats_.messages.inc();

    entry.presence |= 1ull << proc;
    Line &fill = line(proc, block);
    fill.blockAddr = block;
    fill.state = LineState::Shared;
    for (std::uint32_t w = 0; w < cfg_.wordsPerBlock; ++w)
        fill.data[w] = memory_[block + w];

    res.cycles = cost;
    res.value = fill.data[addr - block];
    if (res.value != architectural_[addr])
        stats_.staleReads.inc();
    return res;
}

sim::Cycle
DirectoryCacheSystem::write(std::uint32_t proc, std::uint64_t addr,
                            Word value)
{
    SIM_ASSERT(proc < cfg_.processors && addr < memory_.size());
    const std::uint64_t block = blockOf(addr);
    architectural_[addr] = value;

    Line &ln = line(proc, block);
    const bool present = ln.valid() && ln.blockAddr == block;
    DirEntry &entry = dir(block);

    if (present && ln.state == LineState::Modified) {
        stats_.writeHits.inc();
        ln.data[addr - block] = value;
        return cfg_.hitLatency;
    }

    sim::Cycle cost = cfg_.hitLatency + cfg_.networkLatency +
                      cfg_.directoryLatency; // ownership request
    stats_.messages.inc();
    if (present)
        stats_.writeHits.inc();
    else
        stats_.writeMisses.inc();
    cost += evictVictim(proc, block);

    if (entry.dirty && entry.owner != proc) {
        writebackOwner(block);
        cost += 2 * cfg_.networkLatency;
    }

    // Invalidate exactly the recorded sharers (point-to-point).
    std::uint32_t killed = 0;
    for (std::uint32_t p = 0; p < cfg_.processors; ++p) {
        if (p == proc || !(entry.presence >> p & 1ull))
            continue;
        Line &remote = line(p, block);
        if (remote.valid() && remote.blockAddr == block)
            remote.state = LineState::Invalid;
        entry.presence &= ~(1ull << p);
        ++killed;
    }
    stats_.invalidationsSent.inc(killed);
    stats_.messages.inc(killed); // one message per sharer, no broadcast
    stats_.remoteCacheProbes.inc(killed);
    if (killed > 0)
        cost += cfg_.networkLatency; // invalidations overlap

    if (!present) {
        cost += cfg_.memoryLatency + cfg_.networkLatency;
        stats_.messages.inc();
        Line &fill = line(proc, block);
        fill.blockAddr = block;
        for (std::uint32_t w = 0; w < cfg_.wordsPerBlock; ++w)
            fill.data[w] = memory_[block + w];
    }
    Line &mine = line(proc, block);
    mine.state = LineState::Modified;
    mine.data[addr - block] = value;
    entry.presence = 1ull << proc;
    entry.dirty = true;
    entry.owner = proc;
    return cost;
}

std::uint32_t
DirectoryCacheSystem::sharers(std::uint64_t addr) const
{
    const auto &entry = dir(blockOf(addr));
    std::uint32_t n = 0;
    for (std::uint64_t bits = entry.presence; bits; bits >>= 1)
        n += bits & 1ull;
    return n;
}

bool
DirectoryCacheSystem::dirty(std::uint64_t addr) const
{
    return dir(blockOf(addr)).dirty;
}

Word
DirectoryCacheSystem::latest(std::uint64_t addr) const
{
    SIM_ASSERT(addr < architectural_.size());
    return architectural_[addr];
}

} // namespace mem

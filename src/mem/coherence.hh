/**
 * @file
 * CoherentCacheSystem: private per-processor caches over a shared bus
 * and main memory — the machinery whose scaling cost the paper's Issue
 * 1 discussion critiques.
 *
 * Censier & Feautrier's definition is modelled directly: "a memory
 * scheme is coherent if the value returned on a LOAD instruction is
 * always the value given by the latest STORE instruction with the same
 * address". Three configurations are available:
 *
 *  - store-in (write-back) MSI with write-invalidate snooping: correct,
 *    but every shared write costs a bus transaction that invalidates
 *    all other cached copies;
 *  - store-through with invalidation: correct, writes always cross the
 *    bus;
 *  - store-through *without* invalidation: the paper's counterexample —
 *    "the individual processors can read and write the address and
 *    never see any changes caused by the other processor". Reads may
 *    return stale values; tests demonstrate exactly this.
 *
 * The model is immediate-mode: each access returns the cycles it costs,
 * which the Issue-1/E2 benchmarks accumulate per processor.
 */

#ifndef TTDA_MEM_COHERENCE_HH
#define TTDA_MEM_COHERENCE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/word.hh"

namespace mem
{

/** MSI line state. */
enum class LineState : std::uint8_t { Invalid, Shared, Modified };

/** Snooping cache system with selectable write policy. */
class CoherentCacheSystem
{
  public:
    struct Config
    {
        std::uint32_t processors = 2;
        std::size_t linesPerCache = 64; //!< direct-mapped
        std::uint32_t wordsPerBlock = 4;
        bool storeThrough = false; //!< write-through instead of write-back
        bool invalidate = true;    //!< snoop-invalidate on writes
        sim::Cycle hitLatency = 1;
        sim::Cycle busLatency = 3;    //!< arbitration + transfer
        sim::Cycle memoryLatency = 10;
    };

    struct Stats
    {
        sim::Counter readHits;
        sim::Counter readMisses;
        sim::Counter writeHits;
        sim::Counter writeMisses;
        sim::Counter invalidationsSent; //!< copies killed in other caches
        sim::Counter busTransactions;
        sim::Counter writebacks;
        sim::Counter staleReads; //!< reads that returned a stale value
    };

    CoherentCacheSystem(Config cfg, std::size_t memory_words);

    /** LOAD by processor `proc`; returns (cycles, value). */
    struct ReadResult
    {
        sim::Cycle cycles = 0;
        Word value = 0;
    };
    ReadResult read(std::uint32_t proc, std::uint64_t addr);

    /** STORE by processor `proc`; returns the cycles consumed. */
    sim::Cycle write(std::uint32_t proc, std::uint64_t addr, Word value);

    /** Current state of the block containing addr in proc's cache. */
    LineState stateOf(std::uint32_t proc, std::uint64_t addr) const;

    /** The architecturally latest value (for staleness checks). */
    Word latest(std::uint64_t addr) const;

    const Stats &stats() const { return stats_; }
    const Config &config() const { return cfg_; }

  private:
    struct Line
    {
        LineState state = LineState::Invalid;
        std::uint64_t blockAddr = 0; //!< block-aligned word address
        std::vector<Word> data;
        bool valid() const { return state != LineState::Invalid; }
    };

    std::uint64_t blockOf(std::uint64_t addr) const;
    std::size_t indexOf(std::uint64_t block) const;
    Line &line(std::uint32_t proc, std::uint64_t block);
    const Line *findLine(std::uint32_t proc, std::uint64_t block) const;

    /** Write a dirty line back to memory. */
    void writeback(Line &ln);

    /** Invalidate every other cache's copy; returns copies killed. */
    std::uint64_t invalidateOthers(std::uint32_t proc,
                                   std::uint64_t block);

    /** Fill proc's line for `block`, evicting as needed; returns the
     *  bus/memory cycles consumed. */
    sim::Cycle fill(std::uint32_t proc, std::uint64_t block,
                    LineState new_state);

    Config cfg_;
    std::vector<Word> memory_;       //!< backing store
    std::vector<Word> architectural_; //!< latest-store-wins oracle
    std::vector<std::vector<Line>> caches_;
    Stats stats_;
};

} // namespace mem

#endif // TTDA_MEM_COHERENCE_HH

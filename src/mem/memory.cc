#include "mem/memory.hh"

#include "common/format.hh"
#include "common/logging.hh"

namespace mem
{

namespace
{

const char *
requestName(MemRequest::Kind kind)
{
    switch (kind) {
      case MemRequest::Kind::Read: return "read";
      case MemRequest::Kind::Write: return "write";
      case MemRequest::Kind::FetchAndAdd: return "faa";
    }
    return "?";
}

} // namespace

MemoryModule::MemoryModule(std::size_t words, sim::Cycle access_latency,
                           std::uint32_t banks)
    : cells_(words, 0), accessLatency_(access_latency), banks_(banks),
      bankQueues_(banks)
{
    SIM_ASSERT(words > 0);
    SIM_ASSERT(access_latency >= 1);
    SIM_ASSERT(banks >= 1);
}

void
MemoryModule::request(MemRequest req)
{
    SIM_ASSERT_MSG(req.addr < cells_.size(),
                   "memory request to {} beyond size {}", req.addr,
                   cells_.size());
    bankQueues_[req.addr % banks_].push_back(Pending{req, now_});
}

void
MemoryModule::step(sim::Cycle now)
{
    now_ = now + 1;

    // A memstall window freezes bank acceptance; accesses already in
    // service still retire on time.
    const bool stalled = faults_ && faults_->memStalled(now_, faultId_);

    for (auto &q : bankQueues_) {
        if (stalled)
            break;
        if (q.empty())
            continue;
        Pending p = std::move(q.front());
        q.pop_front();
        stats_.busyBankCycles.inc();
        stats_.queueDelay.sample(static_cast<double>(now_ - p.enqueued));
        SIM_TRACE(tracer_, Mem, complete, tracePid_, traceTid_,
                  requestName(p.req.kind), now_, accessLatency_,
                  sim::format("\"addr\":{},\"qdelay\":{}", p.req.addr,
                              now_ - p.enqueued));

        MemResponse rsp;
        rsp.kind = p.req.kind;
        rsp.addr = p.req.addr;
        rsp.cookie = p.req.cookie;
        rsp.seq = p.req.seq;
        Word &cell = cells_[p.req.addr];

        const auto seenIt = dedup_ && p.req.seq != 0
                                ? dedupSeen_.find(p.req.seq)
                                : dedupSeen_.end();
        if (seenIt != dedupSeen_.end()) {
            // A replayed request: respond (the original response, or
            // the ACK for it, may have been lost) without re-applying
            // any side effect.
            stats_.dupsSuppressed.inc();
            switch (p.req.kind) {
              case MemRequest::Kind::Read:
                rsp.data = cell; // re-reads are idempotent
                break;
              case MemRequest::Kind::Write:
                rsp.data = p.req.data;
                break;
              case MemRequest::Kind::FetchAndAdd:
                rsp.data = seenIt->second; // original old value
                break;
            }
        } else {
            switch (p.req.kind) {
              case MemRequest::Kind::Read:
                stats_.reads.inc();
                rsp.data = cell;
                break;
              case MemRequest::Kind::Write:
                stats_.writes.inc();
                cell = p.req.data;
                rsp.data = p.req.data;
                break;
              case MemRequest::Kind::FetchAndAdd:
                stats_.fetchAndAdds.inc();
                rsp.data = cell;
                cell = fromInt(toInt(cell) + toInt(p.req.data));
                break;
            }
            if (dedup_ && p.req.seq != 0) {
                dedupSeen_.emplace(p.req.seq, rsp.data);
                dedupFifo_.push_back(p.req.seq);
                if (dedupFifo_.size() > dedupWindow_) {
                    dedupSeen_.erase(dedupFifo_.front());
                    dedupFifo_.pop_front();
                }
            }
        }
        inService_.push(now_ + accessLatency_ - 1, rsp);
    }

    while (!inService_.empty() && inService_.minKey() <= now_)
        completed_.push_back(inService_.pop());
}

std::optional<MemResponse>
MemoryModule::pollResponse()
{
    if (completed_.empty())
        return std::nullopt;
    MemResponse rsp = completed_.front();
    completed_.pop_front();
    return rsp;
}

bool
MemoryModule::idle() const
{
    for (const auto &q : bankQueues_)
        if (!q.empty())
            return false;
    return inService_.empty() && completed_.empty();
}

Word
MemoryModule::peek(std::uint64_t addr) const
{
    SIM_ASSERT(addr < cells_.size());
    return cells_[addr];
}

void
MemoryModule::poke(std::uint64_t addr, Word value)
{
    SIM_ASSERT(addr < cells_.size());
    cells_[addr] = value;
}

} // namespace mem

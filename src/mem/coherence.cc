#include "mem/coherence.hh"

#include "common/logging.hh"

namespace mem
{

CoherentCacheSystem::CoherentCacheSystem(Config cfg,
                                         std::size_t memory_words)
    : cfg_(cfg), memory_(memory_words, 0), architectural_(memory_words, 0)
{
    SIM_ASSERT(cfg.processors >= 1);
    SIM_ASSERT(cfg.linesPerCache >= 1);
    SIM_ASSERT(cfg.wordsPerBlock >= 1);
    caches_.resize(cfg.processors);
    for (auto &cache : caches_) {
        cache.resize(cfg.linesPerCache);
        for (auto &ln : cache)
            ln.data.assign(cfg.wordsPerBlock, 0);
    }
}

std::uint64_t
CoherentCacheSystem::blockOf(std::uint64_t addr) const
{
    return addr / cfg_.wordsPerBlock * cfg_.wordsPerBlock;
}

std::size_t
CoherentCacheSystem::indexOf(std::uint64_t block) const
{
    return (block / cfg_.wordsPerBlock) % cfg_.linesPerCache;
}

CoherentCacheSystem::Line &
CoherentCacheSystem::line(std::uint32_t proc, std::uint64_t block)
{
    return caches_[proc][indexOf(block)];
}

const CoherentCacheSystem::Line *
CoherentCacheSystem::findLine(std::uint32_t proc,
                              std::uint64_t block) const
{
    const Line &ln = caches_[proc][indexOf(block)];
    return ln.valid() && ln.blockAddr == block ? &ln : nullptr;
}

void
CoherentCacheSystem::writeback(Line &ln)
{
    for (std::uint32_t w = 0; w < cfg_.wordsPerBlock; ++w)
        memory_[ln.blockAddr + w] = ln.data[w];
    stats_.writebacks.inc();
    stats_.busTransactions.inc();
}

std::uint64_t
CoherentCacheSystem::invalidateOthers(std::uint32_t proc,
                                      std::uint64_t block)
{
    std::uint64_t killed = 0;
    for (std::uint32_t p = 0; p < cfg_.processors; ++p) {
        if (p == proc)
            continue;
        Line &ln = line(p, block);
        if (ln.valid() && ln.blockAddr == block) {
            if (ln.state == LineState::Modified)
                writeback(ln);
            ln.state = LineState::Invalid;
            ++killed;
        }
    }
    stats_.invalidationsSent.inc(killed);
    return killed;
}

sim::Cycle
CoherentCacheSystem::fill(std::uint32_t proc, std::uint64_t block,
                          LineState new_state)
{
    sim::Cycle cost = cfg_.busLatency + cfg_.memoryLatency;
    stats_.busTransactions.inc();

    // A remote Modified copy must be written back before the fill so
    // we read the latest data.
    for (std::uint32_t p = 0; p < cfg_.processors; ++p) {
        if (p == proc)
            continue;
        Line &remote = line(p, block);
        if (remote.valid() && remote.blockAddr == block &&
            remote.state == LineState::Modified)
        {
            writeback(remote);
            remote.state = LineState::Shared;
            cost += cfg_.busLatency;
        }
    }

    Line &ln = line(proc, block);
    if (ln.valid() && ln.blockAddr != block &&
        ln.state == LineState::Modified)
    {
        writeback(ln); // eviction of a dirty conflicting line
        cost += cfg_.busLatency;
    }
    ln.blockAddr = block;
    ln.state = new_state;
    for (std::uint32_t w = 0; w < cfg_.wordsPerBlock; ++w)
        ln.data[w] = memory_[block + w];
    return cost;
}

CoherentCacheSystem::ReadResult
CoherentCacheSystem::read(std::uint32_t proc, std::uint64_t addr)
{
    SIM_ASSERT(proc < cfg_.processors);
    SIM_ASSERT(addr < memory_.size());
    const std::uint64_t block = blockOf(addr);

    ReadResult res;
    Line &ln = line(proc, block);
    if (ln.valid() && ln.blockAddr == block) {
        stats_.readHits.inc();
        res.cycles = cfg_.hitLatency;
        res.value = ln.data[addr - block];
    } else {
        stats_.readMisses.inc();
        res.cycles = cfg_.hitLatency + fill(proc, block,
                                            LineState::Shared);
        res.value = line(proc, block).data[addr - block];
    }
    if (res.value != architectural_[addr])
        stats_.staleReads.inc();
    return res;
}

sim::Cycle
CoherentCacheSystem::write(std::uint32_t proc, std::uint64_t addr,
                           Word value)
{
    SIM_ASSERT(proc < cfg_.processors);
    SIM_ASSERT(addr < memory_.size());
    const std::uint64_t block = blockOf(addr);
    architectural_[addr] = value;

    sim::Cycle cost = cfg_.hitLatency;
    Line &ln = line(proc, block);
    const bool present = ln.valid() && ln.blockAddr == block;

    if (cfg_.storeThrough) {
        // Write-through: always update memory over the bus.
        if (present) {
            stats_.writeHits.inc();
            ln.data[addr - block] = value;
        } else {
            stats_.writeMisses.inc();
        }
        memory_[addr] = value;
        stats_.busTransactions.inc();
        cost += cfg_.busLatency + cfg_.memoryLatency;
        if (cfg_.invalidate) {
            // "What is logically required is a mechanism which, upon
            // the occurrence of a write to location x, invalidates all
            // other cached copies."
            if (invalidateOthers(proc, block) > 0)
                cost += cfg_.busLatency;
        }
        return cost;
    }

    // Store-in (write-back) MSI.
    if (present && ln.state == LineState::Modified) {
        stats_.writeHits.inc();
        ln.data[addr - block] = value;
        return cost;
    }
    if (present && ln.state == LineState::Shared) {
        // Upgrade: bus invalidation, no data transfer.
        stats_.writeHits.inc();
        stats_.busTransactions.inc();
        cost += cfg_.busLatency;
        if (cfg_.invalidate)
            invalidateOthers(proc, block);
        ln.state = LineState::Modified;
        ln.data[addr - block] = value;
        return cost;
    }
    // Write miss: read-for-ownership.
    stats_.writeMisses.inc();
    cost += fill(proc, block, LineState::Modified);
    if (cfg_.invalidate)
        invalidateOthers(proc, block);
    line(proc, block).data[addr - block] = value;
    return cost;
}

LineState
CoherentCacheSystem::stateOf(std::uint32_t proc, std::uint64_t addr) const
{
    const std::uint64_t block = blockOf(addr);
    const Line *ln = findLine(proc, block);
    return ln ? ln->state : LineState::Invalid;
}

Word
CoherentCacheSystem::latest(std::uint64_t addr) const
{
    SIM_ASSERT(addr < architectural_.size());
    return architectural_[addr];
}

} // namespace mem

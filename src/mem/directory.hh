/**
 * @file
 * DirectoryCacheSystem: Censier & Feautrier's directory-based
 * coherence (the solution proposed in the very paper this one cites
 * for the coherence definition: "A New Solution to the Coherence
 * Problems in Multicache Systems", IEEE ToC 1978).
 *
 * Instead of broadcasting on a snooped bus, the memory keeps a
 * *directory* entry per block: a presence bit per cache plus a dirty
 * bit. Misses interrogate the directory; writes invalidate exactly
 * the recorded sharers with point-to-point messages. The scaling
 * contrast with the snooping system (every transaction observed by
 * all p caches) is measured in experiment E2d:
 *
 *   snooping:  every bus op costs a broadcast — O(p) cache lookups;
 *   directory: each op costs only targeted messages — O(#sharers).
 *
 * The model is immediate-mode like mem::CoherentCacheSystem, with the
 * same read/write interface, so both can be driven by one workload.
 */

#ifndef TTDA_MEM_DIRECTORY_HH
#define TTDA_MEM_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/word.hh"

namespace mem
{

/** Directory-based coherent cache system. */
class DirectoryCacheSystem
{
  public:
    struct Config
    {
        std::uint32_t processors = 2;
        std::size_t linesPerCache = 64; //!< direct-mapped
        std::uint32_t wordsPerBlock = 4;
        sim::Cycle hitLatency = 1;
        sim::Cycle networkLatency = 3;  //!< one point-to-point message
        sim::Cycle memoryLatency = 10;
        sim::Cycle directoryLatency = 2; //!< directory lookup/update
    };

    struct Stats
    {
        sim::Counter readHits;
        sim::Counter readMisses;
        sim::Counter writeHits;
        sim::Counter writeMisses;
        sim::Counter invalidationsSent; //!< targeted, not broadcast
        sim::Counter messages; //!< point-to-point interconnect messages
        sim::Counter remoteCacheProbes; //!< caches actually disturbed
        sim::Counter writebacks;
        sim::Counter staleReads;
    };

    DirectoryCacheSystem(Config cfg, std::size_t memory_words);

    struct ReadResult
    {
        sim::Cycle cycles = 0;
        Word value = 0;
    };
    ReadResult read(std::uint32_t proc, std::uint64_t addr);
    sim::Cycle write(std::uint32_t proc, std::uint64_t addr, Word value);

    /** Directory-recorded sharer count of addr's block. */
    std::uint32_t sharers(std::uint64_t addr) const;
    /** Whether the directory records a dirty owner. */
    bool dirty(std::uint64_t addr) const;

    Word latest(std::uint64_t addr) const;
    const Stats &stats() const { return stats_; }
    const Config &config() const { return cfg_; }

  private:
    enum class LineState : std::uint8_t { Invalid, Shared, Modified };

    struct Line
    {
        LineState state = LineState::Invalid;
        std::uint64_t blockAddr = 0;
        std::vector<Word> data;
        bool valid() const { return state != LineState::Invalid; }
    };

    struct DirEntry
    {
        std::uint64_t presence = 0; //!< bit per cache
        bool dirty = false;
        std::uint32_t owner = 0;
    };

    std::uint64_t blockOf(std::uint64_t addr) const;
    std::size_t indexOf(std::uint64_t block) const;
    Line &line(std::uint32_t proc, std::uint64_t block);
    DirEntry &dir(std::uint64_t block);
    const DirEntry &dir(std::uint64_t block) const;

    /** Drop proc's conflicting victim (if any), updating the
     *  directory; returns extra cycles. */
    sim::Cycle evictVictim(std::uint32_t proc, std::uint64_t block);

    void writebackOwner(std::uint64_t block);

    Config cfg_;
    std::vector<Word> memory_;
    std::vector<Word> architectural_;
    std::vector<std::vector<Line>> caches_;
    std::vector<DirEntry> directory_;
    Stats stats_;
};

} // namespace mem

#endif // TTDA_MEM_DIRECTORY_HH

/**
 * @file
 * HepMemory: Denelcor-HEP-style full/empty-bit memory (paper footnote
 * 2 in Section 2.1).
 *
 * Like I-structure storage, every cell carries a status bit; unlike it,
 * "unsatisfiable requests result in a busy-waiting condition — i.e.,
 * there is no such thing as a deferred read list". A synchronized read
 * of an empty cell NACKs and the requester must retry; every retry is
 * a fresh memory (and network) transaction. The nackedReads counter is
 * exactly the extra traffic the paper's deferred lists eliminate.
 *
 * Operations:
 *   readFull   — succeeds only when full; optionally empties the cell
 *                (consuming read, HEP's producer/consumer idiom).
 *   writeEmpty — succeeds only when empty; sets full.
 *   read/write — ordinary unsynchronized accesses.
 */

#ifndef TTDA_MEM_HEP_HH
#define TTDA_MEM_HEP_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "mem/word.hh"

namespace mem
{

/** Full/empty-bit memory with busy-wait (NACK) semantics. */
class HepMemory
{
  public:
    struct Stats
    {
        sim::Counter reads;
        sim::Counter writes;
        sim::Counter nackedReads;  //!< retries a real machine would issue
        sim::Counter nackedWrites;
    };

    explicit HepMemory(std::size_t words)
        : values_(words, 0), full_(words, false)
    {
    }

    std::size_t size() const { return values_.size(); }

    /**
     * Synchronized read: value if the cell is full, nullopt (NACK)
     * otherwise. @param consume also mark the cell empty on success.
     */
    std::optional<Word>
    readFull(std::uint64_t addr, bool consume = false)
    {
        stats_.reads.inc();
        if (!full_[addr]) {
            stats_.nackedReads.inc();
            return std::nullopt;
        }
        if (consume)
            full_[addr] = false;
        return values_[addr];
    }

    /** Synchronized write: succeeds only into an empty cell. */
    bool
    writeEmpty(std::uint64_t addr, Word value)
    {
        stats_.writes.inc();
        if (full_[addr]) {
            stats_.nackedWrites.inc();
            return false;
        }
        values_[addr] = value;
        full_[addr] = true;
        return true;
    }

    /** Unsynchronized accessors. */
    Word read(std::uint64_t addr) const { return values_[addr]; }

    void
    write(std::uint64_t addr, Word value)
    {
        values_[addr] = value;
        full_[addr] = true;
    }

    bool isFull(std::uint64_t addr) const { return full_[addr]; }

    void
    clear(std::uint64_t addr, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            values_[addr + i] = 0;
            full_[addr + i] = false;
        }
    }

    const Stats &stats() const { return stats_; }

  private:
    std::vector<Word> values_;
    std::vector<bool> full_;
    Stats stats_;
};

} // namespace mem

#endif // TTDA_MEM_HEP_HH

/**
 * @file
 * MemoryModule: a conventional banked memory element (paper Figure 1-1).
 *
 * Each bank serves one request per cycle; a request completes
 * `accessLatency` cycles after it is accepted by its bank. Requests
 * carry an opaque 64-bit cookie the owner uses to match responses —
 * responses can therefore be consumed out of order by a processor that
 * tolerates it (Issue 1), or force stalls in one that does not.
 */

#ifndef TTDA_MEM_MEMORY_HH
#define TTDA_MEM_MEMORY_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/eventheap.hh"
#include "common/fault.hh"
#include "common/ringqueue.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "mem/word.hh"

namespace mem
{

/** A request presented to a memory module. */
struct MemRequest
{
    enum class Kind : std::uint8_t { Read, Write, FetchAndAdd };

    Kind kind = Kind::Read;
    std::uint64_t addr = 0;
    Word data = 0;           //!< write value / FAA increment
    std::uint64_t cookie = 0; //!< opaque requester tag, echoed back
    /** Duplicate-detection tag, unique per *logical* request; 0 means
     *  unsequenced (no dedup). A lossy fabric can deliver the same
     *  request twice — dedup keeps the replay from re-applying
     *  non-idempotent operations (FETCH-AND-ADD, and writes racing
     *  with other writers). */
    std::uint64_t seq = 0;
};

/** The completion of a MemRequest. */
struct MemResponse
{
    MemRequest::Kind kind = MemRequest::Kind::Read;
    std::uint64_t addr = 0;
    Word data = 0;            //!< read value / FAA old value
    std::uint64_t cookie = 0;
    std::uint64_t seq = 0;    //!< echoed MemRequest::seq
};

/** Banked, fixed-latency random access memory. */
class MemoryModule
{
  public:
    struct Stats
    {
        sim::Counter reads;
        sim::Counter writes;
        sim::Counter fetchAndAdds;
        sim::Counter busyBankCycles;
        sim::Counter dupsSuppressed; //!< sequenced duplicates absorbed
        sim::Accumulator queueDelay; //!< cycles spent waiting for a bank
    };

    /**
     * @param words           addressable size
     * @param access_latency  cycles from bank acceptance to response
     * @param banks           independent banks (addr % banks selects)
     */
    MemoryModule(std::size_t words, sim::Cycle access_latency = 1,
                 std::uint32_t banks = 1);

    std::size_t size() const { return cells_.size(); }

    /** Enqueue a request; it is serviced in FIFO order per bank. */
    void request(MemRequest req);

    /** Advance one cycle. */
    void step(sim::Cycle now);

    /** Pop one completed response, if any. */
    std::optional<MemResponse> pollResponse();

    bool idle() const;

    /**
     * Earliest cycle at which step() must next be called so no bank
     * service or completion is missed (event-driven scheduling; same
     * contract as net::Network::nextDelivery). Returns the current
     * cycle while any bank queue or completed response is pending,
     * (min in-service ready key) - 1 otherwise, sim::neverCycle when
     * idle.
     */
    sim::Cycle
    nextEvent() const
    {
        if (!completed_.empty())
            return now_;
        sim::Cycle next = sim::neverCycle;
        for (const auto &q : bankQueues_) {
            if (q.empty())
                continue;
            next = now_;
            if (faults_) {
                // Queued work waits out a memstall window: banks next
                // serve at the resume cycle, so step() is needed one
                // cycle before it.
                const sim::Cycle resume =
                    faults_->memResume(now_, faultId_);
                if (resume > now_)
                    next = resume - 1;
            }
            break;
        }
        if (!inService_.empty())
            next = std::min(next, inService_.minKey() - 1);
        return next;
    }

    /**
     * Remember the last `window` serviced sequence numbers and absorb
     * replays: a duplicate Read is re-served (idempotent), a duplicate
     * Write or FETCH-AND-ADD responds without touching the cell again
     * (FAA replays return the original old value). Used by machines
     * running under sim::fault plans that can duplicate packets.
     */
    void
    enableDedup(std::size_t window = 1024)
    {
        SIM_ASSERT(window >= 1);
        dedup_ = true;
        dedupWindow_ = window;
    }

    /** Attach the machine's fault injector; this module observes
     *  MemStall windows for module id `fault_id`. */
    void
    setFaultInjector(const sim::fault::FaultInjector *faults,
                     std::uint32_t fault_id)
    {
        faults_ = faults;
        faultId_ = fault_id;
    }

    /** Debug/workload access without timing. */
    Word peek(std::uint64_t addr) const;
    void poke(std::uint64_t addr, Word value);

    /** Emit one `mem`-category span per serviced request onto trace
     *  track (pid, tid). Null detaches. */
    void
    setTracer(sim::Tracer *tracer, std::uint32_t pid, std::uint32_t tid)
    {
        tracer_ = tracer;
        tracePid_ = pid;
        traceTid_ = tid;
    }

    const Stats &stats() const { return stats_; }

  private:
    struct Pending
    {
        MemRequest req;
        sim::Cycle enqueued = 0;
    };

    std::vector<Word> cells_;
    sim::Cycle accessLatency_;
    std::uint32_t banks_;
    sim::Cycle now_ = 0;
    std::vector<sim::RingQueue<Pending>> bankQueues_;
    sim::EventHeap<MemResponse> inService_;
    sim::RingQueue<MemResponse> completed_;
    bool dedup_ = false;
    std::size_t dedupWindow_ = 0;
    /** seq -> FAA old value (the only response a replay can't
     *  recompute); presence alone marks Read/Write dups. */
    std::unordered_map<std::uint64_t, Word> dedupSeen_;
    std::deque<std::uint64_t> dedupFifo_;
    const sim::fault::FaultInjector *faults_ = nullptr;
    std::uint32_t faultId_ = 0;
    Stats stats_;
    sim::Tracer *tracer_ = nullptr;
    std::uint32_t tracePid_ = 0;
    std::uint32_t traceTid_ = 0;
};

} // namespace mem

#endif // TTDA_MEM_MEMORY_HH

/**
 * @file
 * MemoryModule: a conventional banked memory element (paper Figure 1-1).
 *
 * Each bank serves one request per cycle; a request completes
 * `accessLatency` cycles after it is accepted by its bank. Requests
 * carry an opaque 64-bit cookie the owner uses to match responses —
 * responses can therefore be consumed out of order by a processor that
 * tolerates it (Issue 1), or force stalls in one that does not.
 */

#ifndef TTDA_MEM_MEMORY_HH
#define TTDA_MEM_MEMORY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/eventheap.hh"
#include "common/ringqueue.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "mem/word.hh"

namespace mem
{

/** A request presented to a memory module. */
struct MemRequest
{
    enum class Kind : std::uint8_t { Read, Write, FetchAndAdd };

    Kind kind = Kind::Read;
    std::uint64_t addr = 0;
    Word data = 0;           //!< write value / FAA increment
    std::uint64_t cookie = 0; //!< opaque requester tag, echoed back
};

/** The completion of a MemRequest. */
struct MemResponse
{
    MemRequest::Kind kind = MemRequest::Kind::Read;
    std::uint64_t addr = 0;
    Word data = 0;            //!< read value / FAA old value
    std::uint64_t cookie = 0;
};

/** Banked, fixed-latency random access memory. */
class MemoryModule
{
  public:
    struct Stats
    {
        sim::Counter reads;
        sim::Counter writes;
        sim::Counter fetchAndAdds;
        sim::Counter busyBankCycles;
        sim::Accumulator queueDelay; //!< cycles spent waiting for a bank
    };

    /**
     * @param words           addressable size
     * @param access_latency  cycles from bank acceptance to response
     * @param banks           independent banks (addr % banks selects)
     */
    MemoryModule(std::size_t words, sim::Cycle access_latency = 1,
                 std::uint32_t banks = 1);

    std::size_t size() const { return cells_.size(); }

    /** Enqueue a request; it is serviced in FIFO order per bank. */
    void request(MemRequest req);

    /** Advance one cycle. */
    void step(sim::Cycle now);

    /** Pop one completed response, if any. */
    std::optional<MemResponse> pollResponse();

    bool idle() const;

    /**
     * Earliest cycle at which step() must next be called so no bank
     * service or completion is missed (event-driven scheduling; same
     * contract as net::Network::nextDelivery). Returns the current
     * cycle while any bank queue or completed response is pending,
     * (min in-service ready key) - 1 otherwise, sim::neverCycle when
     * idle.
     */
    sim::Cycle
    nextEvent() const
    {
        if (!completed_.empty())
            return now_;
        for (const auto &q : bankQueues_)
            if (!q.empty())
                return now_;
        if (!inService_.empty())
            return inService_.minKey() - 1;
        return sim::neverCycle;
    }

    /** Debug/workload access without timing. */
    Word peek(std::uint64_t addr) const;
    void poke(std::uint64_t addr, Word value);

    /** Emit one `mem`-category span per serviced request onto trace
     *  track (pid, tid). Null detaches. */
    void
    setTracer(sim::Tracer *tracer, std::uint32_t pid, std::uint32_t tid)
    {
        tracer_ = tracer;
        tracePid_ = pid;
        traceTid_ = tid;
    }

    const Stats &stats() const { return stats_; }

  private:
    struct Pending
    {
        MemRequest req;
        sim::Cycle enqueued = 0;
    };

    std::vector<Word> cells_;
    sim::Cycle accessLatency_;
    std::uint32_t banks_;
    sim::Cycle now_ = 0;
    std::vector<sim::RingQueue<Pending>> bankQueues_;
    sim::EventHeap<MemResponse> inService_;
    sim::RingQueue<MemResponse> completed_;
    Stats stats_;
    sim::Tracer *tracer_ = nullptr;
    std::uint32_t tracePid_ = 0;
    std::uint32_t traceTid_ = 0;
};

} // namespace mem

#endif // TTDA_MEM_MEMORY_HH

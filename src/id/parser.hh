/**
 * @file
 * Recursive-descent parser for mini-ID.
 *
 * Grammar (precedence low to high):
 *   module   := def*
 *   def      := 'def' ID '(' params ')' '=' expr ';'
 *   expr     := ifexpr | loopexpr | orexpr
 *   ifexpr   := 'if' expr 'then' expr 'else' expr
 *   loopexpr := '(' 'initial' binding (';' binding)*
 *               'for' ID 'from' expr 'to' expr
 *               'do' update (';' update)*
 *               'return' expr ')'
 *   orexpr   := andexpr ('or' andexpr)*
 *   andexpr  := cmpexpr ('and' cmpexpr)*
 *   cmpexpr  := addexpr (('<'|'<='|'>'|'>='|'='|'<>') addexpr)?
 *   addexpr  := mulexpr (('+'|'-') mulexpr)*
 *   mulexpr  := unexpr (('*'|'/'|'%') unexpr)*
 *   unexpr   := ('-'|'not') unexpr | postfix
 *   postfix  := primary ('[' expr ']')*
 *   primary  := NUM | ID | ID '(' args ')' | '(' expr ')'
 *             | 'array' '(' expr ')' | 'store' '(' e ',' e ',' e ')'
 */

#ifndef TTDA_ID_PARSER_HH
#define TTDA_ID_PARSER_HH

#include <string>

#include "id/ast.hh"

namespace id
{

/** Parse mini-ID source; throws CompileError on syntax errors. */
Module parse(const std::string &source);

} // namespace id

#endif // TTDA_ID_PARSER_HH

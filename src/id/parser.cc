#include "id/parser.hh"

#include "common/format.hh"
#include "id/lexer.hh"

namespace id
{

namespace
{

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    Module
    module()
    {
        Module m;
        while (peek().kind != Tok::End)
            m.defs.push_back(def());
        return m;
    }

  private:
    const Token &peek(std::size_t k = 0) const
    {
        const std::size_t i = pos_ + k;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    Token
    advance()
    {
        Token t = peek();
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool
    accept(Tok kind)
    {
        if (peek().kind != kind)
            return false;
        advance();
        return true;
    }

    Token
    expect(Tok kind, const std::string &where)
    {
        if (peek().kind != kind) {
            fail(sim::format("expected {} {} but found {}",
                             tokName(kind), where,
                             tokName(peek().kind)));
        }
        return advance();
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw CompileError(sim::format("parse error at {}:{}: {}",
                                       peek().line, peek().col, what));
    }

    ExprPtr
    make(Expr::Kind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    Def
    def()
    {
        Def d;
        d.line = peek().line;
        expect(Tok::KwDef, "to start a definition");
        d.name = expect(Tok::Ident, "as the function name").text;
        expect(Tok::LParen, "after the function name");
        if (peek().kind != Tok::RParen) {
            d.params.push_back(
                expect(Tok::Ident, "as a parameter").text);
            while (accept(Tok::Comma))
                d.params.push_back(
                    expect(Tok::Ident, "as a parameter").text);
        }
        expect(Tok::RParen, "after the parameters");
        expect(Tok::EqTok, "before the function body");
        d.body = expr();
        expect(Tok::Semi, "after the function body");
        return d;
    }

    ExprPtr
    expr()
    {
        if (peek().kind == Tok::KwIf)
            return ifExpr();
        if (peek().kind == Tok::KwLet)
            return letExpr();
        return orExpr();
    }

    ExprPtr
    letExpr()
    {
        auto e = make(Expr::Kind::Let);
        expect(Tok::KwLet, "");
        auto one = [&] {
            Expr::Binding b;
            b.name = expect(Tok::Ident, "as a let binding").text;
            expect(Tok::EqTok, "after the let variable");
            b.init = expr();
            e->initials.push_back(std::move(b));
        };
        one();
        while (accept(Tok::Semi)) {
            if (peek().kind == Tok::KwIn)
                fail("stray ';' before 'in'");
            one();
        }
        expect(Tok::KwIn, "after the let bindings");
        e->kids.push_back(expr());
        return e;
    }

    ExprPtr
    ifExpr()
    {
        auto e = make(Expr::Kind::If);
        expect(Tok::KwIf, "");
        e->kids.push_back(expr());
        expect(Tok::KwThen, "after the condition");
        e->kids.push_back(expr());
        expect(Tok::KwElse, "after the then-branch");
        e->kids.push_back(expr());
        return e;
    }

    Expr::Binding
    binding()
    {
        Expr::Binding b;
        b.name = expect(Tok::Ident, "as a loop variable").text;
        expect(Tok::Assign, "after the loop variable");
        b.init = expr();
        return b;
    }

    ExprPtr
    loopExpr()
    {
        auto e = make(Expr::Kind::Loop);
        expect(Tok::LParen, "");
        expect(Tok::KwInitial, "");
        e->initials.push_back(binding());
        while (accept(Tok::Semi)) {
            if (peek().kind == Tok::KwFor)
                fail("stray ';' before 'for'");
            e->initials.push_back(binding());
        }
        expect(Tok::KwFor, "after the initial bindings");
        e->counter = expect(Tok::Ident, "as the loop counter").text;
        expect(Tok::KwFrom, "after the loop counter");
        e->loopFrom = expr();
        expect(Tok::KwTo, "after the lower bound");
        e->loopTo = expr();
        expect(Tok::KwDo, "after the upper bound");
        auto update = [&] {
            expect(Tok::KwNew, "to start a loop body statement");
            Expr::Binding b;
            b.name = expect(Tok::Ident, "as the updated variable").text;
            expect(Tok::Assign, "after the updated variable");
            b.init = expr();
            e->updates.push_back(std::move(b));
        };
        update();
        while (accept(Tok::Semi)) {
            if (peek().kind == Tok::KwReturn)
                fail("stray ';' before 'return'");
            update();
        }
        expect(Tok::KwReturn, "after the loop body");
        e->loopReturn = expr();
        expect(Tok::RParen, "to close the loop expression");
        return e;
    }

    ExprPtr
    binary(BinOp op, ExprPtr lhs, ExprPtr rhs)
    {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Binary;
        e->line = lhs->line;
        e->bin = op;
        e->kids.push_back(std::move(lhs));
        e->kids.push_back(std::move(rhs));
        return e;
    }

    ExprPtr
    orExpr()
    {
        auto lhs = andExpr();
        while (accept(Tok::KwOr))
            lhs = binary(BinOp::Or, std::move(lhs), andExpr());
        return lhs;
    }

    ExprPtr
    andExpr()
    {
        auto lhs = cmpExpr();
        while (accept(Tok::KwAnd))
            lhs = binary(BinOp::And, std::move(lhs), cmpExpr());
        return lhs;
    }

    ExprPtr
    cmpExpr()
    {
        auto lhs = addExpr();
        BinOp op;
        switch (peek().kind) {
          case Tok::Lt: op = BinOp::Lt; break;
          case Tok::Le: op = BinOp::Le; break;
          case Tok::Gt: op = BinOp::Gt; break;
          case Tok::Ge: op = BinOp::Ge; break;
          case Tok::EqTok: op = BinOp::Eq; break;
          case Tok::Ne: op = BinOp::Ne; break;
          default: return lhs;
        }
        advance();
        return binary(op, std::move(lhs), addExpr());
    }

    ExprPtr
    addExpr()
    {
        auto lhs = mulExpr();
        while (true) {
            if (accept(Tok::Plus))
                lhs = binary(BinOp::Add, std::move(lhs), mulExpr());
            else if (accept(Tok::Minus))
                lhs = binary(BinOp::Sub, std::move(lhs), mulExpr());
            else
                return lhs;
        }
    }

    ExprPtr
    mulExpr()
    {
        auto lhs = unExpr();
        while (true) {
            if (accept(Tok::Star))
                lhs = binary(BinOp::Mul, std::move(lhs), unExpr());
            else if (accept(Tok::Slash))
                lhs = binary(BinOp::Div, std::move(lhs), unExpr());
            else if (accept(Tok::Percent))
                lhs = binary(BinOp::Mod, std::move(lhs), unExpr());
            else
                return lhs;
        }
    }

    ExprPtr
    unExpr()
    {
        if (accept(Tok::Minus)) {
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Unary;
            e->un = UnOp::Neg;
            e->kids.push_back(unExpr());
            return e;
        }
        if (accept(Tok::KwNot)) {
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Unary;
            e->un = UnOp::Not;
            e->kids.push_back(unExpr());
            return e;
        }
        return postfix();
    }

    ExprPtr
    postfix()
    {
        auto e = primary();
        while (accept(Tok::LBracket)) {
            auto sel = std::make_unique<Expr>();
            sel->kind = Expr::Kind::Select;
            sel->line = e->line;
            sel->kids.push_back(std::move(e));
            sel->kids.push_back(expr());
            expect(Tok::RBracket, "to close the selection");
            e = std::move(sel);
        }
        return e;
    }

    ExprPtr
    primary()
    {
        switch (peek().kind) {
          case Tok::Int: {
            auto e = make(Expr::Kind::IntLit);
            e->intValue = advance().intValue;
            return e;
          }
          case Tok::Real: {
            auto e = make(Expr::Kind::RealLit);
            e->realValue = advance().realValue;
            return e;
          }
          case Tok::KwArray: {
            auto e = make(Expr::Kind::ArrayNew);
            advance();
            expect(Tok::LParen, "after 'array'");
            e->kids.push_back(expr());
            expect(Tok::RParen, "to close 'array'");
            return e;
          }
          case Tok::KwStore:
          case Tok::KwAppend: {
            auto e = make(peek().kind == Tok::KwStore
                              ? Expr::Kind::StoreOp
                              : Expr::Kind::AppendOp);
            const char *what =
                peek().kind == Tok::KwStore ? "'store'" : "'append'";
            advance();
            expect(Tok::LParen, what);
            e->kids.push_back(expr());
            expect(Tok::Comma, "after the array");
            e->kids.push_back(expr());
            expect(Tok::Comma, "after the index");
            e->kids.push_back(expr());
            expect(Tok::RParen, what);
            return e;
          }
          case Tok::Ident: {
            Token name = advance();
            if (accept(Tok::LParen)) {
                auto e = make(Expr::Kind::Call);
                e->name = name.text;
                e->line = name.line;
                if (peek().kind != Tok::RParen) {
                    e->kids.push_back(expr());
                    while (accept(Tok::Comma))
                        e->kids.push_back(expr());
                }
                expect(Tok::RParen, "to close the call");
                return e;
            }
            auto e = make(Expr::Kind::Var);
            e->name = name.text;
            e->line = name.line;
            return e;
          }
          case Tok::LParen: {
            // A loop expression is itself parenthesized, so it can
            // appear anywhere a primary can: (initial ...) * h.
            if (peek(1).kind == Tok::KwInitial)
                return loopExpr();
            advance();
            auto e = expr();
            expect(Tok::RParen, "to close the parenthesis");
            return e;
          }
          default:
            fail(sim::format("unexpected {}", tokName(peek().kind)));
        }
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

} // namespace

Module
parse(const std::string &source)
{
    return Parser(lex(source)).module();
}

} // namespace id

#include "id/lexer.hh"

#include <cctype>
#include <map>

#include "common/format.hh"

namespace id
{

namespace
{

const std::map<std::string, Tok> keywords = {
    {"def", Tok::KwDef},       {"initial", Tok::KwInitial},
    {"for", Tok::KwFor},       {"from", Tok::KwFrom},
    {"to", Tok::KwTo},         {"do", Tok::KwDo},
    {"new", Tok::KwNew},       {"return", Tok::KwReturn},
    {"if", Tok::KwIf},         {"then", Tok::KwThen},
    {"else", Tok::KwElse},     {"let", Tok::KwLet},
    {"in", Tok::KwIn},         {"array", Tok::KwArray},
    {"store", Tok::KwStore},   {"append", Tok::KwAppend},
    {"and", Tok::KwAnd},
    {"or", Tok::KwOr},         {"not", Tok::KwNot},
};

[[noreturn]] void
fail(int line, int col, const std::string &what)
{
    throw CompileError(
        sim::format("lex error at {}:{}: {}", line, col, what));
}

} // namespace

std::string
tokName(Tok t)
{
    switch (t) {
      case Tok::Ident: return "identifier";
      case Tok::Int: return "integer";
      case Tok::Real: return "real";
      case Tok::KwDef: return "'def'";
      case Tok::KwInitial: return "'initial'";
      case Tok::KwFor: return "'for'";
      case Tok::KwFrom: return "'from'";
      case Tok::KwTo: return "'to'";
      case Tok::KwDo: return "'do'";
      case Tok::KwNew: return "'new'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwIf: return "'if'";
      case Tok::KwThen: return "'then'";
      case Tok::KwElse: return "'else'";
      case Tok::KwLet: return "'let'";
      case Tok::KwIn: return "'in'";
      case Tok::KwArray: return "'array'";
      case Tok::KwStore: return "'store'";
      case Tok::KwAppend: return "'append'";
      case Tok::KwAnd: return "'and'";
      case Tok::KwOr: return "'or'";
      case Tok::KwNot: return "'not'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Assign: return "'<-'";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      case Tok::EqTok: return "'='";
      case Tok::Ne: return "'<>'";
      case Tok::End: return "end of input";
    }
    return "?";
}

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> out;
    int line = 1, col = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto peek = [&](std::size_t k = 0) -> char {
        return i + k < n ? source[i + k] : '\0';
    };
    auto advance = [&] {
        if (source[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        ++i;
    };
    auto push = [&](Tok kind, int l, int c) {
        Token t;
        t.kind = kind;
        t.line = l;
        t.col = c;
        out.push_back(std::move(t));
    };

    while (i < n) {
        const char c = peek();
        const int l0 = line, c0 = col;

        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        // Comments: "--" to end of line.
        if (c == '-' && peek(1) == '-') {
            while (i < n && peek() != '\n')
                advance();
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (i < n && (std::isalnum(
                                 static_cast<unsigned char>(peek())) ||
                             peek() == '_'))
            {
                word.push_back(peek());
                advance();
            }
            Token t;
            auto kw = keywords.find(word);
            t.kind = kw == keywords.end() ? Tok::Ident : kw->second;
            t.text = std::move(word);
            t.line = l0;
            t.col = c0;
            out.push_back(std::move(t));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string num;
            bool is_real = false;
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(peek())))
            {
                num.push_back(peek());
                advance();
            }
            if (peek() == '.' &&
                std::isdigit(static_cast<unsigned char>(peek(1))))
            {
                is_real = true;
                num.push_back('.');
                advance();
                while (i < n &&
                       std::isdigit(static_cast<unsigned char>(peek())))
                {
                    num.push_back(peek());
                    advance();
                }
            }
            Token t;
            t.line = l0;
            t.col = c0;
            if (is_real) {
                t.kind = Tok::Real;
                t.realValue = std::stod(num);
            } else {
                t.kind = Tok::Int;
                try {
                    t.intValue = std::stoll(num);
                } catch (const std::out_of_range &) {
                    fail(l0, c0, "integer literal out of range");
                }
            }
            out.push_back(std::move(t));
            continue;
        }

        switch (c) {
          case '(': advance(); push(Tok::LParen, l0, c0); break;
          case ')': advance(); push(Tok::RParen, l0, c0); break;
          case '[': advance(); push(Tok::LBracket, l0, c0); break;
          case ']': advance(); push(Tok::RBracket, l0, c0); break;
          case ',': advance(); push(Tok::Comma, l0, c0); break;
          case ';': advance(); push(Tok::Semi, l0, c0); break;
          case '+': advance(); push(Tok::Plus, l0, c0); break;
          case '-': advance(); push(Tok::Minus, l0, c0); break;
          case '*': advance(); push(Tok::Star, l0, c0); break;
          case '/': advance(); push(Tok::Slash, l0, c0); break;
          case '%': advance(); push(Tok::Percent, l0, c0); break;
          case '=': advance(); push(Tok::EqTok, l0, c0); break;
          case '>':
            advance();
            if (peek() == '=') {
                advance();
                push(Tok::Ge, l0, c0);
            } else {
                push(Tok::Gt, l0, c0);
            }
            break;
          case '<':
            advance();
            if (peek() == '-') {
                advance();
                push(Tok::Assign, l0, c0);
            } else if (peek() == '=') {
                advance();
                push(Tok::Le, l0, c0);
            } else if (peek() == '>') {
                advance();
                push(Tok::Ne, l0, c0);
            } else {
                push(Tok::Lt, l0, c0);
            }
            break;
          default:
            fail(l0, c0,
                 sim::format("unexpected character '{}'", c));
        }
    }
    Token end;
    end.kind = Tok::End;
    end.line = line;
    end.col = col;
    out.push_back(end);
    return out;
}

} // namespace id

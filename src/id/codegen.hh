/**
 * @file
 * Code generation from mini-ID to tagged-token dataflow graphs.
 *
 * Each function definition compiles to a code block; each loop
 * expression compiles to its own code block following the Figure 2-2
 * schema (graph::LoopBuilder). A synthetic `__start` block receives
 * the program inputs, APPLYs `main`, and OUTPUTs the result, so main
 * remains an ordinary callable function.
 *
 * Conditionals compile to the standard gated schema: every free
 * variable used by a branch flows through a SWITCH steered by the
 * condition, and literal triggers are gated the same way so untaken
 * branches leave no stray tokens.
 */

#ifndef TTDA_ID_CODEGEN_HH
#define TTDA_ID_CODEGEN_HH

#include <cstdint>
#include <string>

#include "graph/program.hh"
#include "id/ast.hh"
#include "id/lexer.hh" // CompileError

namespace id
{

/** The result of compiling a module. */
struct Compiled
{
    graph::Program program;
    std::uint16_t startCb = 0;  //!< inject inputs here; emits OUTPUT
    std::uint16_t mainCb = 0;   //!< the user's main (callable)
    std::uint32_t numInputs = 0; //!< main's parameter count
};

/** Compile a parsed module; throws CompileError on semantic errors. */
Compiled compileModule(const Module &module);

/** Convenience: lex + parse + compile. */
Compiled compile(const std::string &source);

} // namespace id

#endif // TTDA_ID_CODEGEN_HH

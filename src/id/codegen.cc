#include "id/codegen.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/format.hh"
#include "graph/builder.hh"
#include "graph/loop_schema.hh"
#include "id/lexer.hh"
#include "id/parser.hh"

namespace id
{

namespace
{

using graph::BlockBuilder;
using graph::LoopBuilder;
using graph::Opcode;
using graph::Value;

[[noreturn]] void
fail(int line, const std::string &what)
{
    throw CompileError(sim::format("compile error at line {}: {}",
                                   line, what));
}

/** A value source inside the current code block: an instruction output
 *  (possibly the false side of a SWITCH). */
struct Src
{
    std::uint16_t stmt = 0;
    bool falseSide = false;
};

/** Compilation scope: variable sources plus the literal trigger. */
struct Scope
{
    std::map<std::string, Src> vars;
    Src trigger;
};

/** Either an already-placed instruction output or a literal. */
struct Operand
{
    bool isLit = false;
    Value lit;
    Src src;
};

void
collectFreeVars(const Expr &e, std::set<std::string> &bound,
                std::set<std::string> &out)
{
    switch (e.kind) {
      case Expr::Kind::Var:
        if (!bound.contains(e.name))
            out.insert(e.name);
        return;
      case Expr::Kind::Loop: {
        for (const auto &b : e.initials)
            collectFreeVars(*b.init, bound, out);
        collectFreeVars(*e.loopFrom, bound, out);
        collectFreeVars(*e.loopTo, bound, out);
        std::set<std::string> inner = bound;
        for (const auto &b : e.initials)
            inner.insert(b.name);
        inner.insert(e.counter);
        for (const auto &b : e.updates)
            collectFreeVars(*b.init, inner, out);
        collectFreeVars(*e.loopReturn, inner, out);
        return;
      }
      case Expr::Kind::Let: {
        std::set<std::string> inner = bound;
        for (const auto &b : e.initials) {
            collectFreeVars(*b.init, inner, out);
            inner.insert(b.name);
        }
        collectFreeVars(*e.kids[0], inner, out);
        return;
      }
      default:
        for (const auto &k : e.kids)
            collectFreeVars(*k, bound, out);
        return;
    }
}

std::set<std::string>
freeVars(const Expr &e)
{
    std::set<std::string> bound, out;
    collectFreeVars(e, bound, out);
    return out;
}

Opcode
binOpcode(BinOp op)
{
    switch (op) {
      case BinOp::Add: return Opcode::Add;
      case BinOp::Sub: return Opcode::Sub;
      case BinOp::Mul: return Opcode::Mul;
      case BinOp::Div: return Opcode::Div;
      case BinOp::Mod: return Opcode::Mod;
      case BinOp::Lt: return Opcode::Lt;
      case BinOp::Le: return Opcode::Le;
      case BinOp::Gt: return Opcode::Gt;
      case BinOp::Ge: return Opcode::Ge;
      case BinOp::Eq: return Opcode::Eq;
      case BinOp::Ne: return Opcode::Ne;
      case BinOp::And: return Opcode::And;
      case BinOp::Or: return Opcode::Or;
    }
    throw CompileError("unknown binary operator");
}

bool
isCommutative(BinOp op)
{
    switch (op) {
      case BinOp::Add:
      case BinOp::Mul:
      case BinOp::Eq:
      case BinOp::Ne:
      case BinOp::And:
      case BinOp::Or:
        return true;
      default:
        return false;
    }
}

class CodeGen
{
  public:
    explicit CodeGen(const Module &mod) : mod_(mod) {}

    Compiled
    run()
    {
        // Pass 1: reserve a code block per definition so calls can be
        // wired regardless of declaration order (mutual recursion).
        for (const auto &def : mod_.defs) {
            if (fns_.contains(def.name))
                fail(def.line,
                     sim::format("duplicate definition of '{}'",
                                 def.name));
            if (def.params.empty())
                fail(def.line,
                     sim::format("function '{}' needs at least one "
                                 "parameter", def.name));
            if (def.params.size() > 4)
                fail(def.line,
                     sim::format("function '{}' has {} parameters; "
                                 "the token format supports at most 4",
                                 def.name, def.params.size()));
            const auto id = out_.program.reserveCodeBlock(def.name);
            fns_[def.name] = {id, def.params.size()};
        }

        // Pass 2: compile bodies.
        for (const auto &def : mod_.defs)
            compileDef(def);

        auto main_it = fns_.find("main");
        if (main_it == fns_.end())
            throw CompileError("no 'main' definition");
        out_.mainCb = main_it->second.first;
        out_.numInputs =
            static_cast<std::uint32_t>(main_it->second.second);

        // Synthesize __start: inputs -> APPLY main -> OUTPUT.
        BlockBuilder start(out_.program, "__start", out_.numInputs);
        const auto apply = start.add(
            Opcode::Apply, static_cast<std::uint8_t>(out_.numInputs),
            "apply main");
        start.constant(apply, Value{graph::FnRef{out_.mainCb}});
        for (std::uint16_t p = 0; p < out_.numInputs; ++p)
            start.to(p, apply, static_cast<std::uint8_t>(p));
        const auto output = start.add(Opcode::Output, 1);
        start.to(apply, output, 0);
        out_.startCb = start.build();

        out_.program.validate();
        return std::move(out_);
    }

  private:
    void
    wire(BlockBuilder &b, const Src &src, std::uint16_t dst,
         std::uint8_t port)
    {
        b.to(src.stmt, dst, port, src.falseSide);
    }

    /** Materialize an operand into an instruction output. */
    Src
    place(BlockBuilder &b, Scope &sc, const Operand &op)
    {
        if (!op.isLit)
            return op.src;
        const auto lit = b.add(Opcode::Lit, 1, "lit");
        b.constant(lit, op.lit);
        wire(b, sc.trigger, lit, 0);
        return Src{lit, false};
    }

    Operand
    genOperand(BlockBuilder &b, Scope &sc, const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit:
            return Operand{true, Value{e.intValue}, {}};
          case Expr::Kind::RealLit:
            return Operand{true, Value{e.realValue}, {}};
          default:
            return Operand{false, {}, gen(b, sc, e)};
        }
    }

    /** Compile `e` into block `b`; returns the source of its value. */
    Src
    gen(BlockBuilder &b, Scope &sc, const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit:
          case Expr::Kind::RealLit:
            return place(b, sc, genOperand(b, sc, e));

          case Expr::Kind::Var: {
            auto it = sc.vars.find(e.name);
            if (it == sc.vars.end())
                fail(e.line, sim::format("unknown variable '{}'",
                                         e.name));
            return it->second;
          }

          case Expr::Kind::Binary:
            return genBinary(b, sc, e);

          case Expr::Kind::Unary: {
            const auto op =
                e.un == UnOp::Neg ? Opcode::Neg : Opcode::Not;
            const auto stmt = b.add(op, 1);
            wire(b, gen(b, sc, *e.kids[0]), stmt, 0);
            return Src{stmt, false};
          }

          case Expr::Kind::Call:
            return genCall(b, sc, e);

          case Expr::Kind::If:
            return genIf(b, sc, e);

          case Expr::Kind::Loop:
            return genLoop(b, sc, e);

          case Expr::Kind::Let: {
            Scope inner = sc;
            for (const auto &bind : e.initials) {
                inner.vars[bind.name] = place(
                    b, inner, genOperand(b, inner, *bind.init));
            }
            return gen(b, inner, *e.kids[0]);
          }

          case Expr::Kind::ArrayNew: {
            const auto alloc = b.add(Opcode::Alloc, 1, "array");
            wire(b, gen(b, sc, *e.kids[0]), alloc, 0);
            // ALLOC/I-FETCH carry one reply continuation; an IDENT
            // fan-out point makes the value freely consumable.
            const auto fan = b.add(Opcode::Ident, 1);
            b.to(alloc, fan, 0);
            return Src{fan, false};
          }

          case Expr::Kind::Select: {
            const Src arr = gen(b, sc, *e.kids[0]);
            const Operand idx = genOperand(b, sc, *e.kids[1]);
            std::uint16_t fetch;
            if (idx.isLit) {
                fetch = b.add(Opcode::IFetch, 1, "select");
                b.constant(fetch, idx.lit);
            } else {
                fetch = b.add(Opcode::IFetch, 2, "select");
                wire(b, idx.src, fetch, 1);
            }
            wire(b, arr, fetch, 0);
            const auto fan = b.add(Opcode::Ident, 1);
            b.to(fetch, fan, 0);
            return Src{fan, false};
          }

          case Expr::Kind::StoreOp: {
            const Src arr = gen(b, sc, *e.kids[0]);
            const Src idx = place(b, sc, genOperand(b, sc, *e.kids[1]));
            const Src val = place(b, sc, genOperand(b, sc, *e.kids[2]));
            const auto store = b.add(Opcode::IStore, 3, "store");
            wire(b, arr, store, 0);
            wire(b, idx, store, 1);
            wire(b, val, store, 2);
            // The expression's value is the array itself.
            return arr;
          }

          case Expr::Kind::AppendOp: {
            const Src arr = gen(b, sc, *e.kids[0]);
            const Src idx = place(b, sc, genOperand(b, sc, *e.kids[1]));
            const Src val = place(b, sc, genOperand(b, sc, *e.kids[2]));
            const auto app = b.add(Opcode::Append, 3, "append");
            wire(b, arr, app, 0);
            wire(b, idx, app, 1);
            wire(b, val, app, 2);
            const auto fan = b.add(Opcode::Ident, 1);
            b.to(app, fan, 0);
            return Src{fan, false};
          }
        }
        throw CompileError("unhandled expression kind");
    }

    Src
    genBinary(BlockBuilder &b, Scope &sc, const Expr &e)
    {
        Operand lhs = genOperand(b, sc, *e.kids[0]);
        Operand rhs = genOperand(b, sc, *e.kids[1]);
        // Fold a left literal into the constant slot of commutative
        // operators; otherwise materialize it.
        if (lhs.isLit && !rhs.isLit && isCommutative(e.bin))
            std::swap(lhs, rhs);
        if (lhs.isLit)
            lhs.src = place(b, sc, lhs);

        std::uint16_t stmt;
        if (rhs.isLit) {
            stmt = b.add(binOpcode(e.bin), 1);
            b.constant(stmt, rhs.lit);
        } else {
            stmt = b.add(binOpcode(e.bin), 2);
            wire(b, rhs.src, stmt, 1);
        }
        wire(b, lhs.src, stmt, 0);
        return Src{stmt, false};
    }

    Src
    genCall(BlockBuilder &b, Scope &sc, const Expr &e)
    {
        auto it = fns_.find(e.name);
        if (it == fns_.end())
            fail(e.line,
                 sim::format("call of undefined function '{}'",
                             e.name));
        const auto [cb, arity] = it->second;
        if (e.kids.size() != arity)
            fail(e.line,
                 sim::format("'{}' expects {} arguments, got {}",
                             e.name, arity, e.kids.size()));
        const auto apply = b.add(
            Opcode::Apply, static_cast<std::uint8_t>(arity),
            sim::format("call {}", e.name));
        b.constant(apply, Value{graph::FnRef{cb}});
        for (std::size_t j = 0; j < arity; ++j) {
            const Src arg = place(b, sc, genOperand(b, sc, *e.kids[j]));
            wire(b, arg, apply, static_cast<std::uint8_t>(j));
        }
        return Src{apply, false};
    }

    Src
    genIf(BlockBuilder &b, Scope &sc, const Expr &e)
    {
        const Src cond = gen(b, sc, *e.kids[0]);

        // Gate every free variable the branches use, plus the literal
        // trigger (the condition steered by itself).
        std::set<std::string> used = freeVars(*e.kids[1]);
        for (const auto &v : freeVars(*e.kids[2]))
            used.insert(v);

        const auto trig_sw = b.add(Opcode::Switch, 2, "if trigger");
        wire(b, cond, trig_sw, 0);
        wire(b, cond, trig_sw, 1);

        Scope then_sc, else_sc;
        then_sc.trigger = Src{trig_sw, false};
        else_sc.trigger = Src{trig_sw, true};
        for (const auto &v : used) {
            auto it = sc.vars.find(v);
            if (it == sc.vars.end())
                continue; // function names etc. resolve elsewhere
            const auto sw = b.add(Opcode::Switch, 2,
                                  sim::format("if gate {}", v));
            wire(b, it->second, sw, 0);
            wire(b, cond, sw, 1);
            then_sc.vars[v] = Src{sw, false};
            else_sc.vars[v] = Src{sw, true};
        }

        const Src then_v = gen(b, then_sc, *e.kids[1]);
        const Src else_v = gen(b, else_sc, *e.kids[2]);
        // Merge: only one branch produces a token per activation.
        const auto merge = b.add(Opcode::Ident, 1, "if merge");
        wire(b, then_v, merge, 0);
        wire(b, else_v, merge, 0);
        return Src{merge, false};
    }

    Src
    genLoop(BlockBuilder &b, Scope &sc, const Expr &e)
    {
        // Identify the circulating set: initials, counter, limit, and
        // the loop-invariant free variables of the body.
        std::set<std::string> bound;
        for (const auto &bind : e.initials)
            bound.insert(bind.name);
        if (bound.contains(e.counter))
            fail(e.line, sim::format("loop counter '{}' shadows an "
                                     "initial binding", e.counter));
        bound.insert(e.counter);

        std::set<std::string> body_free;
        for (const auto &u : e.updates) {
            if (!bound.contains(u.name) || u.name == e.counter)
                fail(e.line, sim::format("'new {}' does not update an "
                                         "initial binding", u.name));
            std::set<std::string> bb = bound;
            collectFreeVars(*u.init, bb, body_free);
        }
        {
            std::set<std::string> bb = bound;
            collectFreeVars(*e.loopReturn, bb, body_free);
        }
        std::vector<std::string> invariants;
        for (const auto &v : body_free) {
            if (fns_.contains(v))
                continue;
            if (!sc.vars.contains(v))
                fail(e.line, sim::format("unknown variable '{}' in "
                                         "loop body", v));
            invariants.push_back(v);
        }

        // Variable order: initials, counter, limit, invariants.
        std::vector<std::string> names;
        for (const auto &bind : e.initials)
            names.push_back(bind.name);
        const std::size_t ci = names.size();
        names.push_back(e.counter);
        const std::size_t li = names.size();
        names.push_back("__limit");
        std::map<std::string, std::size_t> index;
        for (std::size_t j = 0; j < names.size(); ++j)
            index[names[j]] = j;
        for (const auto &v : invariants) {
            index[v] = names.size();
            names.push_back(v);
        }
        const std::size_t nvars = names.size();

        // ---- Build the loop code block -----------------------------
        LoopBuilder loop(out_.program,
                         sim::format("loop@{}", e.line), nvars);

        const auto pred = loop.b().add(Opcode::Le, 2, "i<=limit");
        loop.b().to(loop.recv(ci), pred, 0);
        loop.b().to(loop.recv(li), pred, 1);
        loop.setPredicate(pred);

        Scope body_sc;
        body_sc.trigger = Src{loop.sw(ci), false};
        for (std::size_t j = 0; j < nvars; ++j)
            body_sc.vars[names[j]] = Src{loop.sw(j), false};
        body_sc.vars.erase("__limit");

        std::set<std::string> updated;
        for (const auto &u : e.updates) {
            const Src nv = gen(loop.b(), body_sc, *u.init);
            wire(loop.b(), nv, loop.next(index[u.name]), 0);
            updated.insert(u.name);
        }
        for (const auto &bind : e.initials)
            if (!updated.contains(bind.name))
                loop.circulateUnchanged(index[bind.name]);
        {
            const auto inc = loop.b().add(Opcode::Add, 1, "i+1");
            loop.b().constant(inc, Value{std::int64_t{1}});
            loop.b().to(loop.sw(ci), inc, 0);
            loop.b().to(inc, loop.next(ci), 0);
        }
        loop.circulateUnchanged(li);
        for (const auto &v : invariants)
            loop.circulateUnchanged(index[v]);

        // Exits: circulating variables used by the return expression
        // come out through L⁻¹ into fresh receivers in the parent.
        std::set<std::string> ret_bound;
        std::set<std::string> ret_free;
        collectFreeVars(*e.loopReturn, ret_bound, ret_free);
        Scope ret_sc = sc; // parent scope + exit receivers
        std::vector<std::pair<std::size_t, std::uint16_t>> exits;
        for (const auto &v : ret_free) {
            auto idx = index.find(v);
            if (idx == index.end() ||
                std::find(invariants.begin(), invariants.end(), v) !=
                    invariants.end())
            {
                continue; // parent variable: already in ret_sc
            }
            const auto recv = b.add(Opcode::Ident, 1,
                                    sim::format("{} (exit)", v));
            exits.emplace_back(idx->second, recv);
            ret_sc.vars[v] = Src{recv, false};
        }
        for (const auto &[j, recv] : exits)
            loop.exitTo(j, recv, 0);
        const std::uint16_t loop_cb = loop.build();

        // ---- Parent-side entries -----------------------------------
        const std::uint16_t site = nextSite_++;
        auto ls = LoopBuilder::entries(b, loop_cb, site, nvars);
        for (std::size_t j = 0; j < e.initials.size(); ++j) {
            const Src init = place(
                b, sc, genOperand(b, sc, *e.initials[j].init));
            wire(b, init, ls[j], 0);
        }
        const Src from =
            place(b, sc, genOperand(b, sc, *e.loopFrom));
        wire(b, from, ls[ci], 0);
        const Src to_v = place(b, sc, genOperand(b, sc, *e.loopTo));
        wire(b, to_v, ls[li], 0);
        for (const auto &v : invariants)
            wire(b, sc.vars.at(v), ls[index[v]], 0);

        // The loop's value: the return expression, evaluated in the
        // parent with the exit receivers bound.
        return gen(b, ret_sc, *e.loopReturn);
    }

    void
    compileDef(const Def &def)
    {
        const auto [cb_id, arity] = fns_.at(def.name);
        BlockBuilder b(out_.program, def.name,
                       static_cast<std::uint16_t>(arity));
        Scope sc;
        sc.trigger = Src{0, false}; // param 0 triggers literals
        for (std::size_t p = 0; p < def.params.size(); ++p) {
            if (sc.vars.contains(def.params[p]))
                fail(def.line,
                     sim::format("duplicate parameter '{}'",
                                 def.params[p]));
            sc.vars[def.params[p]] =
                Src{static_cast<std::uint16_t>(p), false};
        }
        const Src result = gen(b, sc, *def.body);
        const auto ret = b.add(Opcode::Return, 1);
        wire(b, result, ret, 0);
        b.buildInto(cb_id);
    }

    const Module &mod_;
    Compiled out_;
    std::map<std::string, std::pair<std::uint16_t, std::size_t>> fns_;
    std::uint16_t nextSite_ = 1;
};

} // namespace

Compiled
compileModule(const Module &module)
{
    return CodeGen(module).run();
}

Compiled
compile(const std::string &source)
{
    return compileModule(parse(source));
}

} // namespace id

/**
 * @file
 * Lexer for the mini-ID language (a small subset of the Irvine
 * Dataflow language the paper's compiler accepted — enough to express
 * its Figure 2-2 program verbatim modulo ASCII syntax).
 *
 * Errors are reported as id::CompileError with line/column positions.
 */

#ifndef TTDA_ID_LEXER_HH
#define TTDA_ID_LEXER_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace id
{

/** A user-facing compilation failure. */
class CompileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

enum class Tok : std::uint8_t
{
    // Literals and names.
    Ident, Int, Real,
    // Keywords.
    KwDef, KwInitial, KwFor, KwFrom, KwTo, KwDo, KwNew, KwReturn,
    KwIf, KwThen, KwElse, KwLet, KwIn,
    KwArray, KwStore, KwAppend, KwAnd, KwOr, KwNot,
    // Punctuation and operators.
    LParen, RParen, LBracket, RBracket, Comma, Semi,
    Assign,   // <-
    Plus, Minus, Star, Slash, Percent,
    Lt, Le, Gt, Ge, EqTok, Ne,
    End,
};

/** One lexed token. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;        //!< identifier spelling
    std::int64_t intValue = 0;
    double realValue = 0.0;
    int line = 1;
    int col = 1;
};

/** Tokenize `source`; throws CompileError on bad input. */
std::vector<Token> lex(const std::string &source);

/** Printable token-kind name for diagnostics. */
std::string tokName(Tok t);

} // namespace id

#endif // TTDA_ID_LEXER_HH

/**
 * @file
 * Abstract syntax for mini-ID.
 *
 * A program is a list of function definitions; `main` is the entry.
 * Expressions include the paper's loop expression form:
 *
 *   (initial s <- e1; x <- e2
 *    for i from lo to hi do
 *      new x <- ...;
 *      new s <- ...
 *    return expr)
 *
 * plus conditionals, arithmetic/relational/boolean operators, calls,
 * I-structure operations (array/select/store), and literals.
 */

#ifndef TTDA_ID_AST_HH
#define TTDA_ID_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace id
{

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t
{
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
};

enum class UnOp : std::uint8_t { Neg, Not };

/** Expression node (a closed discriminated union). */
struct Expr
{
    enum class Kind : std::uint8_t
    {
        IntLit, RealLit,
        Var,
        Binary, Unary,
        Call,     //!< callee(args...)
        If,       //!< if cond then a else b
        Loop,     //!< the initial/for/return loop expression
        Let,      //!< let x = e; ... in body
        ArrayNew, //!< array(n)
        Select,   //!< a[i]
        StoreOp,  //!< store(a, i, v) — value is a
        AppendOp, //!< append(a, i, v) — value is the *new* array
    };

    Kind kind;
    int line = 0;

    // Literals.
    std::int64_t intValue = 0;
    double realValue = 0.0;

    // Var / Call.
    std::string name;

    // Operators.
    BinOp bin{};
    UnOp un{};

    // Children: Binary {lhs, rhs}; Unary {operand};
    // Call {args...}; If {cond, then, else};
    // ArrayNew {n}; Select {array, index}; StoreOp {array, index, value}.
    std::vector<ExprPtr> kids;

    // Loop form.
    struct Binding
    {
        std::string name;
        ExprPtr init;
    };
    std::vector<Binding> initials;   //!< initial v <- e / let v = e
    std::string counter;             //!< for <counter>
    ExprPtr loopFrom, loopTo;        //!< from/to bounds
    std::vector<Binding> updates;    //!< new v <- e
    ExprPtr loopReturn;              //!< return expression
};

/** One function definition. */
struct Def
{
    std::string name;
    std::vector<std::string> params;
    ExprPtr body;
    int line = 0;
};

/** A parsed program. */
struct Module
{
    std::vector<Def> defs;
};

} // namespace id

#endif // TTDA_ID_AST_HH
